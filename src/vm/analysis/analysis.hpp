// Static analyzer over vm::Op bytecode: abstract interpretation on a
// constant-propagation stack domain.
//
// Produces, per contract (DESIGN.md §12):
//   * CFG with invalid-jump-target and unreachable-code detection,
//   * a proven max-stack-depth bound plus under/overflow possibility,
//   * a worst-case gas upper bound (top for unbounded loops, with the
//     loop heads identified),
//   * the storage read/write footprint — every SLoad/SStore/SxLoad site
//     with its key classified exact-constant / parameter-derived /
//     top-unknown.
//
// Soundness contract: for ANY concrete execution of the same code under
// any context, dynamic gas_used <= gas bound (unless top), the dynamic
// max stack depth <= stack bound (unless top), and every storage key
// actually touched is covered by the footprint (exactly, or by a
// non-exact entry of the same kind). soundness_violation() checks this
// mechanically against a recorded vm::ExecTrace; the fuzz corpus replays
// it in every preset. The dual direction (no false *traps*) is NOT
// promised: a branch guarded by storage or oracle data is explored both
// ways, so "possible" flags over-approximate.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "vm/analysis/cfg.hpp"
#include "vm/vm.hpp"

namespace mc::vm::analysis {

/// Abstract word value. Const tracks the exact value; Param marks data
/// that is a pure function of the call environment (calldata, caller,
/// value, height, timestamp); Top is unknown (storage, oracle, merges of
/// distinct constants).
enum class ValueClass : std::uint8_t { Bottom, Const, Param, Top };

// ---------------------------------------------------------------------------
// Symbolic expression domain
// ---------------------------------------------------------------------------

/// Call-environment leaf a symbolic expression can reference.
enum class EnvParam : std::uint8_t {
  Calldata,      ///< calldata[index]; out-of-range reads are 0 (VM rule)
  CallDataSize,
  Caller,
  CallValue,
  Height,
  Timestamp,
};

[[nodiscard]] std::string_view env_param_name(EnvParam p);

struct SymExpr;
/// Nodes are immutable and shared: copies of an AbsValue (stack dup,
/// state merge, cached summary) alias the same expression tree.
using SymExprPtr = std::shared_ptr<const SymExpr>;

/// Closed-form expression over the call environment, rich enough to
/// cover the contract suite's key-derivation idioms: raw parameter
/// reads, affine combinations `scale·base + offset` (wrapping u64, like
/// the VM), and `HashN` of symbolic tuples mirroring the VM's sha256
/// folding. Anything outside this language stays a plain Param with no
/// expression attached.
struct SymExpr {
  enum class Kind : std::uint8_t { Const, Param, Affine, Hash };
  Kind kind = Kind::Const;
  Word value = 0;                 ///< Const
  EnvParam param = EnvParam::Calldata;  ///< Param
  Word index = 0;                 ///< Param(Calldata): calldata word index
  Word scale = 1;                 ///< Affine
  Word offset = 0;                ///< Affine
  SymExprPtr base;                ///< Affine operand
  std::vector<SymExprPtr> parts;  ///< Hash: bottom-to-top stack order
};

[[nodiscard]] SymExprPtr sym_const(Word v);
[[nodiscard]] SymExprPtr sym_param(EnvParam p, Word index = 0);
/// Normalizing: scale 0 folds to Const(offset), a Const base folds
/// exactly, nested Affine composes, and identity wrappers disappear.
[[nodiscard]] SymExprPtr sym_affine(Word scale, SymExprPtr base, Word offset);
[[nodiscard]] SymExprPtr sym_hash(std::vector<SymExprPtr> parts);

[[nodiscard]] bool sym_equal(const SymExprPtr& a, const SymExprPtr& b);
[[nodiscard]] std::size_t sym_node_count(const SymExpr& e);
/// Human-readable form, e.g. "8*calldata[2]+16" or "H(7, calldata[3])".
[[nodiscard]] std::string sym_to_string(const SymExpr& e);

/// Concrete call environment a symbolic expression is evaluated against.
/// Fields unknown at evaluation time stay nullopt (e.g. the block
/// timestamp at scheduling time); an expression touching them fails to
/// concretize.
struct SymbolicEnv {
  const std::vector<Word>* calldata = nullptr;
  std::optional<Word> caller;
  std::optional<Word> call_value;
  std::optional<Word> height;
  std::optional<Word> time_ms;
};

/// SymbolicEnv with every field known, for the post-execution audit
/// check in ContractStore::call.
[[nodiscard]] SymbolicEnv env_of(const ExecContext& ctx);

/// Evaluate `e` under `env`, mirroring vm::execute's semantics exactly
/// (wrapping arithmetic, out-of-range calldata reads 0, ByteWriter +
/// sha256 prefix for Hash). nullopt when a referenced leaf is unknown.
[[nodiscard]] std::optional<Word> eval_symbolic(const SymExpr& e,
                                                const SymbolicEnv& env);

struct AbsValue {
  ValueClass cls = ValueClass::Bottom;
  Word value = 0;  ///< meaningful only when cls == Const
  /// Closed-form derivation; meaningful only when cls == Param. nullptr
  /// means "environment-derived, no expression" (the pre-symbolic Param).
  SymExprPtr sym;

  [[nodiscard]] static AbsValue constant(Word v) {
    return {ValueClass::Const, v, nullptr};
  }
  [[nodiscard]] static AbsValue param() {
    return {ValueClass::Param, 0, nullptr};
  }
  [[nodiscard]] static AbsValue symbolic(SymExprPtr e) {
    return {ValueClass::Param, 0, std::move(e)};
  }
  [[nodiscard]] static AbsValue top() { return {ValueClass::Top, 0, nullptr}; }

  [[nodiscard]] bool is_const() const { return cls == ValueClass::Const; }

  friend bool operator==(const AbsValue& a, const AbsValue& b) {
    if (a.cls != b.cls) return false;
    if (a.cls == ValueClass::Const) return a.value == b.value;
    if (a.cls == ValueClass::Param) return sym_equal(a.sym, b.sym);
    return true;
  }
};

/// Lattice join (Bottom < Const(v) < Top, Bottom < Param(expr) <
/// Param < Top; distinct constants and Const/Param mixes go to Top).
/// Two Params with different expressions widen to the expressionless
/// Param — a join never invents a concrete cell.
[[nodiscard]] AbsValue join(const AbsValue& a, const AbsValue& b);

/// Storage-key classification surfaced in reports and admission.
enum class KeyClass : std::uint8_t { Exact, Param, Unknown };

[[nodiscard]] KeyClass key_class_of(const AbsValue& v);
[[nodiscard]] std::string_view key_class_name(KeyClass c);
/// Printable key: "42", a symbolic expression, "<param>" or "<unknown>".
[[nodiscard]] std::string key_to_string(const AbsValue& v);

struct FootprintEntry {
  enum class Kind : std::uint8_t { Read, Write, ForeignRead };
  Kind kind = Kind::Read;
  std::size_t pc = 0;      ///< SLoad/SStore/SxLoad site
  AbsValue key;            ///< abstract storage key at the site
  AbsValue contract;       ///< ForeignRead only: abstract contract id
};

[[nodiscard]] std::string_view footprint_kind_name(FootprintEntry::Kind k);

/// Aggregated storage read/write footprint.
struct StorageFootprint {
  std::vector<FootprintEntry> entries;

  /// Keys proven exactly (entries with Const keys) per kind.
  [[nodiscard]] std::set<Word> exact_keys(FootprintEntry::Kind kind) const;
  /// True when some entry of `kind` has a non-constant key — the
  /// footprint then covers every key of that kind (top).
  [[nodiscard]] bool unbounded(FootprintEntry::Kind kind) const;
};

struct StackBound {
  /// No proven bound (unresolved jump or iteration cap hit).
  bool top = false;
  std::size_t max_depth = 0;  ///< proven bound when !top
  bool underflow_possible = false;
  bool overflow_possible = false;
};

struct GasBound {
  bool top = false;           ///< cycle in the CFG or analysis incomplete
  std::uint64_t max = 0;      ///< proven worst case when !top
  std::vector<std::size_t> loop_head_pcs;  ///< back-edge targets
};

struct AnalysisReport {
  std::size_t code_bytes = 0;
  std::size_t instruction_count = 0;
  /// vm::code_well_formed: no undefined opcode / truncated immediate.
  bool well_formed = true;
  Cfg cfg;
  std::size_t unreachable_instructions = 0;
  /// Jump/JumpI sites whose constant target is not a valid boundary.
  std::vector<std::size_t> invalid_jump_pcs;
  /// Jump/JumpI sites whose target is not a compile-time constant. The
  /// analysis cannot follow them, so every bound degrades to top.
  std::vector<std::size_t> unresolved_jump_pcs;
  /// Set on unresolved jumps or the iteration cap: bounds and footprint
  /// are top (still sound, no longer precise).
  bool incomplete = false;
  bool divide_by_zero_possible = false;
  StackBound stack;
  GasBound gas;
  StorageFootprint footprint;

  /// Proven free of the statically-decidable trap classes: well-formed,
  /// fully resolved CFG, no invalid jump, no possible stack violation.
  [[nodiscard]] bool clean() const {
    return well_formed && !incomplete && invalid_jump_pcs.empty() &&
           unresolved_jump_pcs.empty() && !stack.underflow_possible &&
           !stack.overflow_possible;
  }
};

struct AnalyzeOptions {
  /// Pin calldata[0] to a constant: per-entry-point analysis (the
  /// dispatch chain folds, yielding a per-selector gas bound/footprint).
  std::optional<Word> selector;
};

[[nodiscard]] AnalysisReport analyze(BytesView code,
                                     const AnalyzeOptions& opts = {});

/// Selector constants compared against calldata[0] in the canonical
/// dispatch pattern (PUSH k / EQ / PUSH @target / JUMPI), for
/// per-entry-point sweeps by tools and benches.
[[nodiscard]] std::vector<Word> discover_selectors(BytesView code);

// ---------------------------------------------------------------------------
// Deployment admission
// ---------------------------------------------------------------------------

/// What a ContractStore rejects at deployment. The strict default admits
/// every contract in src/contracts/ and examples/; permissive() restores
/// the pre-analysis behaviour (only malformed code rejected).
struct AdmissionPolicy {
  bool reject_malformed = true;
  bool reject_invalid_jumps = true;
  bool reject_unresolved_jumps = true;
  bool reject_stack_violations = true;
  bool require_bounded_gas = false;
  /// When set (and the gas bound is finite), reject bounds above this.
  std::optional<std::uint64_t> max_gas_bound;

  [[nodiscard]] static AdmissionPolicy strict() { return {}; }
  [[nodiscard]] static AdmissionPolicy permissive() {
    AdmissionPolicy p;
    p.reject_invalid_jumps = false;
    p.reject_unresolved_jumps = false;
    p.reject_stack_violations = false;
    return p;
  }
};

struct AdmissionVerdict {
  bool admitted = true;
  std::string reason;  ///< human-readable rejection cause
};

[[nodiscard]] AdmissionVerdict admit(const AnalysisReport& report,
                                     const AdmissionPolicy& policy);

// ---------------------------------------------------------------------------
// Soundness check (dynamic subset-of static)
// ---------------------------------------------------------------------------

/// Empty string when `trace`/`result` (recorded by vm::execute on the
/// SAME code the report was computed from) are contained in the static
/// bounds; otherwise a description of the violated bound. The audit
/// build wraps this in MC_DCHECK on every ContractStore::call.
[[nodiscard]] std::string soundness_violation(const AnalysisReport& report,
                                              const ExecTrace& trace,
                                              const ExecResult& result);

// ---------------------------------------------------------------------------
// Per-selector footprint summaries + concretization
// ---------------------------------------------------------------------------

/// Footprint of one dispatch entry point, computed by re-analyzing the
/// contract with calldata[0] pinned to `selector` (the dispatch chain
/// folds, so other handlers' keys drop out of the summary).
struct SelectorSummary {
  Word selector = 0;
  /// Per-selector analysis hit ⊤ somewhere: the footprint covers every
  /// key and consumers must not concretize from it.
  bool incomplete = false;
  StorageFootprint footprint;
};

/// Summaries beyond this count are skipped (a purely adversarial
/// contract could embed thousands of dispatch patterns; capping bounds
/// deploy-time analysis cost, costing only scheduling precision).
inline constexpr std::size_t kMaxSelectorSummaries = 32;

/// One summary per discovered selector, in selector order, capped at
/// kMaxSelectorSummaries. Cached by ContractStore at deploy time.
[[nodiscard]] std::vector<SelectorSummary> summarize_selectors(BytesView code);

/// The summary whose selector equals calldata[0]; nullptr when calldata
/// is empty or no selector matches (callers fall back to the
/// whole-program footprint).
[[nodiscard]] const SelectorSummary* summary_for(
    const std::vector<SelectorSummary>& summaries,
    const std::vector<Word>& calldata);

/// A footprint with every key evaluated under a concrete environment.
/// `*_exact` is false when some entry of that kind failed to evaluate
/// (non-symbolic key or unknown env leaf) — that kind then covers every
/// key, exactly as in the abstract footprint.
struct ConcreteFootprint {
  std::set<Word> reads;
  std::set<Word> writes;
  std::set<std::pair<Word, Word>> foreign_reads;  ///< (contract, key)
  bool reads_exact = true;
  bool writes_exact = true;
  bool foreign_exact = true;

  [[nodiscard]] bool exact() const {
    return reads_exact && writes_exact && foreign_exact;
  }
};

[[nodiscard]] ConcreteFootprint concretize_footprint(
    const StorageFootprint& fp, const SymbolicEnv& env);

/// Empty string when every traced access of a kind that concretized
/// exactly lands inside the concretized cell set (kinds that did not
/// concretize are covered by the abstract soundness check instead).
/// MC_DCHECKed next to soundness_violation on every ContractStore::call
/// in audit builds, and replayed by the analyze fuzz harness.
[[nodiscard]] std::string concretization_violation(const StorageFootprint& fp,
                                                   const SymbolicEnv& env,
                                                   const ExecTrace& trace);

}  // namespace mc::vm::analysis
