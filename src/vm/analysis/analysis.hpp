// Static analyzer over vm::Op bytecode: abstract interpretation on a
// constant-propagation stack domain.
//
// Produces, per contract (DESIGN.md §12):
//   * CFG with invalid-jump-target and unreachable-code detection,
//   * a proven max-stack-depth bound plus under/overflow possibility,
//   * a worst-case gas upper bound (top for unbounded loops, with the
//     loop heads identified),
//   * the storage read/write footprint — every SLoad/SStore/SxLoad site
//     with its key classified exact-constant / parameter-derived /
//     top-unknown.
//
// Soundness contract: for ANY concrete execution of the same code under
// any context, dynamic gas_used <= gas bound (unless top), the dynamic
// max stack depth <= stack bound (unless top), and every storage key
// actually touched is covered by the footprint (exactly, or by a
// non-exact entry of the same kind). soundness_violation() checks this
// mechanically against a recorded vm::ExecTrace; the fuzz corpus replays
// it in every preset. The dual direction (no false *traps*) is NOT
// promised: a branch guarded by storage or oracle data is explored both
// ways, so "possible" flags over-approximate.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "vm/analysis/cfg.hpp"
#include "vm/vm.hpp"

namespace mc::vm::analysis {

/// Abstract word value. Const tracks the exact value; Param marks data
/// that is a pure function of the call environment (calldata, caller,
/// value, height, timestamp); Top is unknown (storage, oracle, merges of
/// distinct constants).
enum class ValueClass : std::uint8_t { Bottom, Const, Param, Top };

struct AbsValue {
  ValueClass cls = ValueClass::Bottom;
  Word value = 0;  ///< meaningful only when cls == Const

  [[nodiscard]] static AbsValue constant(Word v) {
    return {ValueClass::Const, v};
  }
  [[nodiscard]] static AbsValue param() { return {ValueClass::Param, 0}; }
  [[nodiscard]] static AbsValue top() { return {ValueClass::Top, 0}; }

  [[nodiscard]] bool is_const() const { return cls == ValueClass::Const; }

  friend bool operator==(const AbsValue& a, const AbsValue& b) {
    return a.cls == b.cls && (a.cls != ValueClass::Const || a.value == b.value);
  }
};

/// Lattice join (Bottom < Const(v) < Top, Bottom < Param < Top; distinct
/// constants and Const/Param mixes go to Top).
[[nodiscard]] AbsValue join(const AbsValue& a, const AbsValue& b);

/// Storage-key classification surfaced in reports and admission.
enum class KeyClass : std::uint8_t { Exact, Param, Unknown };

[[nodiscard]] KeyClass key_class_of(const AbsValue& v);
[[nodiscard]] std::string_view key_class_name(KeyClass c);

struct FootprintEntry {
  enum class Kind : std::uint8_t { Read, Write, ForeignRead };
  Kind kind = Kind::Read;
  std::size_t pc = 0;      ///< SLoad/SStore/SxLoad site
  AbsValue key;            ///< abstract storage key at the site
  AbsValue contract;       ///< ForeignRead only: abstract contract id
};

[[nodiscard]] std::string_view footprint_kind_name(FootprintEntry::Kind k);

/// Aggregated storage read/write footprint.
struct StorageFootprint {
  std::vector<FootprintEntry> entries;

  /// Keys proven exactly (entries with Const keys) per kind.
  [[nodiscard]] std::set<Word> exact_keys(FootprintEntry::Kind kind) const;
  /// True when some entry of `kind` has a non-constant key — the
  /// footprint then covers every key of that kind (top).
  [[nodiscard]] bool unbounded(FootprintEntry::Kind kind) const;
};

struct StackBound {
  /// No proven bound (unresolved jump or iteration cap hit).
  bool top = false;
  std::size_t max_depth = 0;  ///< proven bound when !top
  bool underflow_possible = false;
  bool overflow_possible = false;
};

struct GasBound {
  bool top = false;           ///< cycle in the CFG or analysis incomplete
  std::uint64_t max = 0;      ///< proven worst case when !top
  std::vector<std::size_t> loop_head_pcs;  ///< back-edge targets
};

struct AnalysisReport {
  std::size_t code_bytes = 0;
  std::size_t instruction_count = 0;
  /// vm::code_well_formed: no undefined opcode / truncated immediate.
  bool well_formed = true;
  Cfg cfg;
  std::size_t unreachable_instructions = 0;
  /// Jump/JumpI sites whose constant target is not a valid boundary.
  std::vector<std::size_t> invalid_jump_pcs;
  /// Jump/JumpI sites whose target is not a compile-time constant. The
  /// analysis cannot follow them, so every bound degrades to top.
  std::vector<std::size_t> unresolved_jump_pcs;
  /// Set on unresolved jumps or the iteration cap: bounds and footprint
  /// are top (still sound, no longer precise).
  bool incomplete = false;
  bool divide_by_zero_possible = false;
  StackBound stack;
  GasBound gas;
  StorageFootprint footprint;

  /// Proven free of the statically-decidable trap classes: well-formed,
  /// fully resolved CFG, no invalid jump, no possible stack violation.
  [[nodiscard]] bool clean() const {
    return well_formed && !incomplete && invalid_jump_pcs.empty() &&
           unresolved_jump_pcs.empty() && !stack.underflow_possible &&
           !stack.overflow_possible;
  }
};

struct AnalyzeOptions {
  /// Pin calldata[0] to a constant: per-entry-point analysis (the
  /// dispatch chain folds, yielding a per-selector gas bound/footprint).
  std::optional<Word> selector;
};

[[nodiscard]] AnalysisReport analyze(BytesView code,
                                     const AnalyzeOptions& opts = {});

/// Selector constants compared against calldata[0] in the canonical
/// dispatch pattern (PUSH k / EQ / PUSH @target / JUMPI), for
/// per-entry-point sweeps by tools and benches.
[[nodiscard]] std::vector<Word> discover_selectors(BytesView code);

// ---------------------------------------------------------------------------
// Deployment admission
// ---------------------------------------------------------------------------

/// What a ContractStore rejects at deployment. The strict default admits
/// every contract in src/contracts/ and examples/; permissive() restores
/// the pre-analysis behaviour (only malformed code rejected).
struct AdmissionPolicy {
  bool reject_malformed = true;
  bool reject_invalid_jumps = true;
  bool reject_unresolved_jumps = true;
  bool reject_stack_violations = true;
  bool require_bounded_gas = false;
  /// When set (and the gas bound is finite), reject bounds above this.
  std::optional<std::uint64_t> max_gas_bound;

  [[nodiscard]] static AdmissionPolicy strict() { return {}; }
  [[nodiscard]] static AdmissionPolicy permissive() {
    AdmissionPolicy p;
    p.reject_invalid_jumps = false;
    p.reject_unresolved_jumps = false;
    p.reject_stack_violations = false;
    return p;
  }
};

struct AdmissionVerdict {
  bool admitted = true;
  std::string reason;  ///< human-readable rejection cause
};

[[nodiscard]] AdmissionVerdict admit(const AnalysisReport& report,
                                     const AdmissionPolicy& policy);

// ---------------------------------------------------------------------------
// Soundness check (dynamic subset-of static)
// ---------------------------------------------------------------------------

/// Empty string when `trace`/`result` (recorded by vm::execute on the
/// SAME code the report was computed from) are contained in the static
/// bounds; otherwise a description of the violated bound. The audit
/// build wraps this in MC_DCHECK on every ContractStore::call.
[[nodiscard]] std::string soundness_violation(const AnalysisReport& report,
                                              const ExecTrace& trace,
                                              const ExecResult& result);

}  // namespace mc::vm::analysis
