#include "vm/analysis/cfg.hpp"

#include <algorithm>

#include "audit/check.hpp"

namespace mc::vm::analysis {

Program decode_program(BytesView code) {
  Program program;
  program.instr_at.assign(code.size(), Program::kNoInstr);
  std::size_t pc = 0;
  while (pc < code.size()) {
    // Mirror vm.cpp's jump_targets(): every decoded start is a boundary,
    // including the undefined-opcode position itself.
    program.instr_at[pc] = program.instrs.size();
    if (!is_valid_op(code[pc])) {
      program.instrs.push_back({pc, Op::Stop, 0, 1, /*valid=*/false});
      program.well_formed = false;
      return program;
    }
    const Op op = static_cast<Op>(code[pc]);
    const auto width = static_cast<std::size_t>(immediate_width(op));
    if (pc + 1 + width > code.size()) {
      // Truncated immediate: decodes as a boundary, traps at execution.
      program.instrs.push_back({pc, op, 0, code.size() - pc, /*valid=*/false});
      program.well_formed = false;
      return program;
    }
    Word imm = 0;
    for (std::size_t i = 0; i < width; ++i)
      imm |= static_cast<Word>(code[pc + 1 + i]) << (8 * i);
    program.instrs.push_back({pc, op, imm, 1 + width, /*valid=*/true});
    pc += 1 + width;
  }
  return program;
}

namespace {

/// True when the instruction never falls through to pc + size.
bool is_terminator(const Instr& in) {
  if (!in.valid) return true;
  switch (in.op) {
    case Op::Stop:
    case Op::Jump:
    case Op::Return:
    case Op::Revert:
      return true;
    default:
      return false;
  }
}

}  // namespace

Cfg build_cfg(const Program& program, const SuccessorMap& succs,
              const std::vector<bool>& reachable) {
  Cfg cfg;
  const std::size_t n = program.instrs.size();
  cfg.block_of.assign(n, 0);
  if (n == 0) return cfg;
  MC_ASSERT(succs.size() == n && reachable.size() == n,
            "successor/reachability maps must cover every instruction");

  // Leaders: entry, every successor target that is not the plain
  // fall-through of its (single) predecessor, and every instruction
  // after a terminator or branch.
  std::vector<bool> leader(n, false);
  leader[0] = true;
  for (std::size_t i = 0; i < n; ++i) {
    const Instr& in = program.instrs[i];
    if (is_terminator(in) || in.op == Op::JumpI) {
      if (i + 1 < n) leader[i + 1] = true;
    }
    for (const std::size_t s : succs[i])
      if (s != i + 1 || in.op == Op::Jump || in.op == Op::JumpI)
        leader[s] = true;
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (leader[i]) {
      CfgBlock block;
      block.first_instr = i;
      block.first_pc = program.instrs[i].pc;
      cfg.blocks.push_back(block);
    }
    cfg.block_of[i] = cfg.blocks.size() - 1;
    cfg.blocks.back().past_instr = i + 1;
  }

  for (CfgBlock& block : cfg.blocks) {
    const std::size_t last = block.past_instr - 1;
    for (const std::size_t s : succs[last]) {
      const std::size_t target = cfg.block_of[s];
      if (std::find(block.successors.begin(), block.successors.end(),
                    target) == block.successors.end())
        block.successors.push_back(target);
    }
    block.reachable = false;
    for (std::size_t i = block.first_instr; i < block.past_instr; ++i)
      block.reachable = block.reachable || reachable[i];
  }

  // Iterative DFS over reachable blocks: back edges mark loop heads.
  enum class Color : std::uint8_t { White, Grey, Black };
  std::vector<Color> color(cfg.blocks.size(), Color::White);
  if (cfg.blocks[0].reachable) {
    struct Frame {
      std::size_t block;
      std::size_t next_succ;
    };
    std::vector<Frame> stack{{0, 0}};
    color[0] = Color::Grey;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const CfgBlock& block = cfg.blocks[frame.block];
      if (frame.next_succ >= block.successors.size()) {
        color[frame.block] = Color::Black;
        stack.pop_back();
        continue;
      }
      const std::size_t next = block.successors[frame.next_succ++];
      if (color[next] == Color::Grey) {
        cfg.has_cycle = true;
        cfg.blocks[next].loop_head = true;
      } else if (color[next] == Color::White && cfg.blocks[next].reachable) {
        color[next] = Color::Grey;
        stack.push_back({next, 0});
      }
    }
  }
  return cfg;
}

bool longest_path_gas(const Program& program, const Cfg& cfg,
                      std::uint64_t& out_gas) {
  out_gas = 0;
  if (cfg.blocks.empty() || cfg.has_cycle) return !cfg.has_cycle;

  // Per-block gas: sum of retired-instruction costs. An invalid trailing
  // instruction charges nothing (vm::execute traps BadOpcode before the
  // gas add).
  std::vector<std::uint64_t> block_gas(cfg.blocks.size(), 0);
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
    for (std::size_t i = cfg.blocks[b].first_instr;
         i < cfg.blocks[b].past_instr; ++i)
      if (program.instrs[i].valid) block_gas[b] += gas_cost(program.instrs[i].op);

  // Reverse-postorder DP over the acyclic reachable subgraph.
  std::vector<std::size_t> postorder;
  std::vector<std::uint8_t> visited(cfg.blocks.size(), 0);
  if (cfg.blocks[0].reachable) {
    struct Frame {
      std::size_t block;
      std::size_t next_succ;
    };
    std::vector<Frame> stack{{0, 0}};
    visited[0] = 1;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const CfgBlock& block = cfg.blocks[frame.block];
      if (frame.next_succ >= block.successors.size()) {
        postorder.push_back(frame.block);
        stack.pop_back();
        continue;
      }
      const std::size_t next = block.successors[frame.next_succ++];
      if (!visited[next] && cfg.blocks[next].reachable) {
        visited[next] = 1;
        stack.push_back({next, 0});
      }
    }
  }

  // dp[b] = gas of the costliest path starting at b. Postorder visits
  // successors before predecessors, so one pass suffices.
  std::vector<std::uint64_t> dp(cfg.blocks.size(), 0);
  for (const std::size_t b : postorder) {
    std::uint64_t best_succ = 0;
    for (const std::size_t s : cfg.blocks[b].successors)
      best_succ = std::max(best_succ, dp[s]);
    dp[b] = block_gas[b] + best_succ;
  }
  out_gas = cfg.blocks[0].reachable ? dp[0] : 0;
  return true;
}

}  // namespace mc::vm::analysis
