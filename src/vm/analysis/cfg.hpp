// Control-flow graph layer of the bytecode static analyzer.
//
// Decodes an Op blob into an instruction list mirroring vm::execute's
// boundary rules exactly (the first undefined opcode or truncated
// immediate is itself a valid jump target that traps at runtime; bytes
// beyond it are not), then builds basic blocks once the abstract
// interpreter has resolved constant jump targets. The block graph is
// what the gas bound (longest acyclic path), loop-head identification
// (back edges) and unreachable-code detection are computed on.
#pragma once

#include <cstdint>
#include <vector>

#include "vm/opcode.hpp"
#include "vm/vm.hpp"

namespace mc::vm::analysis {

/// One decoded instruction. `valid == false` marks the trailing
/// undefined-opcode / truncated-immediate position: executing it traps
/// BadOpcode, so it terminates its block with no successors.
struct Instr {
  std::size_t pc = 0;
  Op op = Op::Stop;
  Word imm = 0;
  std::size_t size = 1;  ///< opcode byte + immediate bytes
  bool valid = true;
};

/// Decoded program: instruction list plus the pc -> index map the
/// interpreter and jump validation share.
struct Program {
  std::vector<Instr> instrs;
  /// index into instrs for each code byte that starts an instruction;
  /// kNoInstr elsewhere (mid-immediate bytes, bytes past a decode stop).
  std::vector<std::size_t> instr_at;
  /// True when every byte decoded: no undefined opcode, no truncated
  /// immediate (the same predicate as vm::code_well_formed).
  bool well_formed = true;

  static constexpr std::size_t kNoInstr = static_cast<std::size_t>(-1);

  [[nodiscard]] bool is_boundary(Word pc) const {
    return pc < instr_at.size() &&
           instr_at[static_cast<std::size_t>(pc)] != kNoInstr;
  }
};

[[nodiscard]] Program decode_program(BytesView code);

/// Basic block over [first_instr, past_instr) indices into
/// Program::instrs. Successor lists hold block indices.
struct CfgBlock {
  std::size_t first_instr = 0;
  std::size_t past_instr = 0;
  std::size_t first_pc = 0;
  std::vector<std::size_t> successors;
  bool reachable = false;
  bool loop_head = false;  ///< target of a back edge (DFS on reachable blocks)
};

struct Cfg {
  std::vector<CfgBlock> blocks;
  /// blocks index for each instruction index.
  std::vector<std::size_t> block_of;
  bool has_cycle = false;
};

/// Per-instruction successor sets resolved by the abstract interpreter
/// (fall-throughs plus constant jump targets; empty for terminators).
using SuccessorMap = std::vector<std::vector<std::size_t>>;

/// Build basic blocks from resolved successors. `reachable` marks the
/// instruction indices the interpreter actually visited.
[[nodiscard]] Cfg build_cfg(const Program& program, const SuccessorMap& succs,
                            const std::vector<bool>& reachable);

/// Worst-case gas along any path from the entry block, summing
/// vm::gas_cost per instruction. Returns false (top) when the reachable
/// subgraph has a cycle; loop heads are flagged on the Cfg by build_cfg.
[[nodiscard]] bool longest_path_gas(const Program& program, const Cfg& cfg,
                                    std::uint64_t& out_gas);

}  // namespace mc::vm::analysis
