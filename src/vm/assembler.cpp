#include "vm/assembler.hpp"

#include <charconv>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/hex.hpp"
#include "vm/opcode.hpp"

namespace mc::vm {
namespace {

struct Token {
  std::string mnemonic;
  std::string operand;  // empty, number, or @label
  std::size_t line = 0;
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

std::uint64_t parse_number(const std::string& text, std::size_t line) {
  std::uint64_t value = 0;
  std::from_chars_result r{};
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    r = std::from_chars(text.data() + 2, text.data() + text.size(), value, 16);
  } else {
    r = std::from_chars(text.data(), text.data() + text.size(), value, 10);
  }
  if (r.ec != std::errc{} || r.ptr != text.data() + text.size())
    throw AssembleError(line, "bad numeric operand '" + text + "'");
  return value;
}

}  // namespace

Bytes assemble(std::string_view source) {
  // Pass 1: tokenize, record label offsets while measuring encoded size.
  std::vector<Token> tokens;
  std::unordered_map<std::string, std::uint64_t> labels;
  std::size_t offset = 0;
  std::size_t line_no = 0;

  std::istringstream lines{std::string(source)};
  std::string raw_line;
  while (std::getline(lines, raw_line)) {
    ++line_no;
    std::string_view line = trim(raw_line);
    if (const auto comment = line.find(';'); comment != std::string_view::npos)
      line = trim(line.substr(0, comment));
    if (line.empty()) continue;

    if (line.back() == ':') {
      const std::string label(trim(line.substr(0, line.size() - 1)));
      if (label.empty()) throw AssembleError(line_no, "empty label");
      if (!labels.emplace(label, offset).second)
        throw AssembleError(line_no, "duplicate label '" + label + "'");
      continue;
    }

    Token tok;
    tok.line = line_no;
    const auto space = line.find_first_of(" \t");
    if (space == std::string_view::npos) {
      tok.mnemonic = std::string(line);
    } else {
      tok.mnemonic = std::string(trim(line.substr(0, space)));
      tok.operand = std::string(trim(line.substr(space + 1)));
    }

    const auto op = op_from_mnemonic(tok.mnemonic);
    if (!op.has_value())
      throw AssembleError(line_no, "unknown mnemonic '" + tok.mnemonic + "'");

    // `JUMP @label` / `JUMPI @label` sugar expands to PUSH + JUMP(I).
    const bool sugar = (*op == Op::Jump || *op == Op::JumpI) &&
                       !tok.operand.empty() && tok.operand[0] == '@';
    if (sugar) {
      Token push;
      push.line = line_no;
      push.mnemonic = "PUSH";
      push.operand = tok.operand;
      tokens.push_back(push);
      offset += 9;  // PUSH + imm64
      tok.operand.clear();
    }

    const int width = immediate_width(*op);
    if (width == 0 && !tok.operand.empty())
      throw AssembleError(line_no,
                          tok.mnemonic + " takes no operand");
    if (width > 0 && tok.operand.empty())
      throw AssembleError(line_no, tok.mnemonic + " needs an operand");

    tokens.push_back(tok);
    offset += 1 + static_cast<std::size_t>(width);
    if (offset > kMaxCodeBytes)
      throw AssembleError(line_no, "program exceeds " +
                                       std::to_string(kMaxCodeBytes) +
                                       " bytecode bytes");
  }

  // Pass 2: encode with labels resolved.
  Bytes code;
  code.reserve(offset);
  for (const auto& tok : tokens) {
    const Op op = *op_from_mnemonic(tok.mnemonic);
    code.push_back(static_cast<std::uint8_t>(op));
    const int width = immediate_width(op);
    if (width == 0) continue;

    std::uint64_t value = 0;
    if (!tok.operand.empty() && tok.operand[0] == '@') {
      const std::string label = tok.operand.substr(1);
      auto it = labels.find(label);
      if (it == labels.end())
        throw AssembleError(tok.line, "undefined label '" + label + "'");
      value = it->second;
    } else {
      value = parse_number(tok.operand, tok.line);
    }
    if (width == 1 && value > 0xff)
      throw AssembleError(tok.line, "operand exceeds one byte");
    for (int i = 0; i < width; ++i)
      code.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
  }
  return code;
}

std::string disassemble(BytesView code) {
  std::ostringstream out;
  std::size_t pc = 0;
  while (pc < code.size()) {
    out << pc << ": ";
    if (!is_valid_op(code[pc])) {
      out << "<bad 0x" << std::hex << static_cast<int>(code[pc]) << std::dec
          << ">\n";
      break;
    }
    const Op op = static_cast<Op>(code[pc]);
    const int width = immediate_width(op);
    // A truncated immediate must not read past the blob (untrusted
    // bytecode reaches the disassembler via debug tooling too).
    if (pc + 1 + static_cast<std::size_t>(width) > code.size()) {
      out << "<truncated " << mnemonic(op) << ">\n";
      break;
    }
    out << mnemonic(op);
    if (width > 0) {
      std::uint64_t imm = 0;
      for (int i = 0; i < width; ++i)
        imm |= static_cast<std::uint64_t>(
                   code[pc + 1 + static_cast<std::size_t>(i)])
               << (8 * i);
      out << ' ' << imm;
    }
    out << '\n';
    pc += 1 + static_cast<std::size_t>(width);
  }
  return out.str();
}

}  // namespace mc::vm
