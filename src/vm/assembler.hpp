// Two-pass assembler for the contract VM.
//
// Syntax, one instruction per line:
//   ; comment
//   label:
//   PUSH 42          ; decimal or 0x-hex immediate
//   PUSH @label      ; label address as immediate (jump targets)
//   DUP 1
//   JUMPI @grant
//
// JUMP/JUMPI take their target from the stack, so jumps are written
// `PUSH @label` + `JUMP`. The assembler accepts `JUMP @label` as sugar
// and expands it to that pair.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace mc::vm {

class AssembleError : public std::runtime_error {
 public:
  AssembleError(std::size_t line, const std::string& what)
      : std::runtime_error("line " + std::to_string(line) + ": " + what),
        line_(line) {}

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Hard cap on assembled bytecode size. Contracts are deliberately tiny
/// (the paper keeps on-chain logic to access control); the cap bounds the
/// allocation an adversarial source text can force out of the assembler.
constexpr std::size_t kMaxCodeBytes = 64 * 1024;

/// Assemble source text to bytecode; throws AssembleError on bad input
/// or when the program would exceed kMaxCodeBytes.
Bytes assemble(std::string_view source);

/// Disassemble bytecode to one-instruction-per-line text (debug aid).
std::string disassemble(BytesView code);

}  // namespace mc::vm
