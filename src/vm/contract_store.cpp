#include "vm/contract_store.hpp"

#include "audit/check.hpp"
#include "common/serial.hpp"
#include "crypto/sha256.hpp"

namespace mc::vm {
namespace {

/// Forwards oracle calls to the outer host, logs events locally, and
/// serves cross-contract reads from the store's committed state (so
/// SXLOAD is deterministic on-chain data, never an off-chain call).
class CapturingHost : public Host {
 public:
  CapturingHost(Host& inner, std::vector<Event>& sink,
                const std::map<Word, DeployedContract>& contracts)
      : inner_(inner), sink_(sink), contracts_(contracts) {}

  std::optional<Word> oracle(Word request) override {
    return inner_.oracle(request);
  }

  void on_event(const Event& event) override {
    sink_.push_back(event);
    inner_.on_event(event);
  }

  std::optional<Word> foreign_storage(Word contract_id, Word key) override {
    auto it = contracts_.find(contract_id);
    if (it == contracts_.end()) return 0;  // unknown contract reads as 0
    auto slot = it->second.storage.find(key);
    return slot == it->second.storage.end() ? 0 : slot->second;
  }

 private:
  Host& inner_;
  std::vector<Event>& sink_;
  const std::map<Word, DeployedContract>& contracts_;
};

/// Host for speculative runs: buffers events locally (committed later, or
/// never), records the value of every foreign read for commit-time
/// validation, and fails oracle requests — speculable() excludes oracle
/// contracts, so a trap here only means the gate was bypassed.
class SpeculativeHost : public Host {
 public:
  SpeculativeHost(SpeculativeCall& spec,
                  const std::map<Word, DeployedContract>& contracts)
      : spec_(spec), contracts_(contracts) {}

  std::optional<Word> oracle(Word /*request*/) override {
    return std::nullopt;
  }

  void on_event(const Event& event) override { spec_.events.push_back(event); }

  std::optional<Word> foreign_storage(Word contract_id, Word key) override {
    Word value = 0;  // unknown contract/key reads as 0, as CapturingHost
    auto it = contracts_.find(contract_id);
    if (it != contracts_.end()) {
      auto slot = it->second.storage.find(key);
      if (slot != it->second.storage.end()) value = slot->second;
    }
    spec_.observed.emplace(std::make_pair(contract_id, key), value);
    return value;
  }

 private:
  SpeculativeCall& spec_;
  const std::map<Word, DeployedContract>& contracts_;
};

/// Scan bytecode for Op::Oracle (deployment-time; immediate widths keep
/// the walk aligned on instruction boundaries).
bool code_uses_oracle(BytesView code) {
  std::size_t pc = 0;
  while (pc < code.size()) {
    const Op op = static_cast<Op>(code[pc]);
    if (op == Op::Oracle) return true;
    pc += 1 + static_cast<std::size_t>(immediate_width(op));
  }
  return false;
}

#if defined(MEDCHAIN_AUDIT)
/// Audit leg of the symbolic-domain contract: evaluate the deployed
/// symbolic footprints under the call's fully-known environment and
/// require the dynamic trace to sit inside the concretized cells —
/// first the whole-program footprint, then the matching per-selector
/// summary (what the execution-layer concretizer schedules on).
std::string concretization_check(const DeployedContract& dc,
                                 const ExecContext& ctx,
                                 const ExecTrace& trace) {
  const analysis::SymbolicEnv env = analysis::env_of(ctx);
  if (!dc.report.incomplete) {
    std::string v =
        analysis::concretization_violation(dc.report.footprint, env, trace);
    if (!v.empty()) return v;
  }
  const analysis::SelectorSummary* sum =
      analysis::summary_for(dc.selector_summaries, ctx.calldata);
  if (sum != nullptr && !sum->incomplete)
    return analysis::concretization_violation(sum->footprint, env, trace);
  return {};
}
#endif

}  // namespace

Word ContractStore::deploy(Bytes code, Word deployer, std::uint64_t height) {
  analysis::AnalysisReport report = analysis::analyze(BytesView(code));
  const analysis::AdmissionVerdict verdict = analysis::admit(report, policy_);
  if (!verdict.admitted) throw AdmissionError(verdict.reason);

  ByteWriter w;
  w.bytes(BytesView(code));
  w.u64(deployer);
  w.u64(nonce_++);
  const Word id = crypto::sha256(BytesView(w.data())).prefix_u64();

  DeployedContract dc;
  dc.id = id;
  dc.deployer = deployer;
  dc.uses_oracle = code_uses_oracle(BytesView(code));
  dc.selector_summaries = analysis::summarize_selectors(BytesView(code));
  dc.code = std::move(code);
  dc.deployed_height = height;
  dc.report = std::move(report);
  contracts_[id] = std::move(dc);
  return id;
}

bool ContractStore::speculable(Word id) const {
  auto it = contracts_.find(id);
  return it != contracts_.end() && !it->second.uses_oracle;
}

std::optional<SpeculativeCall> ContractStore::call_speculative(
    Word id, ExecContext ctx) const {
  auto it = contracts_.find(id);
  if (it == contracts_.end()) return std::nullopt;
  const DeployedContract& dc = it->second;

  SpeculativeCall spec;
  spec.contract_id = id;
  ctx.contract_id = id;
  ctx.trace = &spec.trace;  // always traced: the write/read sets come from it

  SpeculativeHost host(spec, contracts_);
  Storage working = dc.storage;  // scratch copy; the store stays untouched
  spec.result = execute(BytesView(dc.code), working, ctx, host);

#if defined(MEDCHAIN_AUDIT)
  // Same soundness contract as call(): the dynamic trace must sit inside
  // the static bounds proven at deployment.
  const std::string violation =
      analysis::soundness_violation(dc.report, spec.trace, spec.result);
  MC_DCHECK(violation.empty(),
            "static analysis soundness contract violated on speculative call");
  const std::string concrete_violation = concretization_check(dc, ctx, spec.trace);
  MC_DCHECK(concrete_violation.empty(),
            "concretized footprint missed a traced cell on speculative call");
#endif

  // Own-storage observations: the pre-state value of every key the run
  // read (conservative — even reads after an own write validate against
  // the committed pre-image).
  for (const Word key : spec.trace.reads) {
    auto slot = dc.storage.find(key);
    spec.observed.emplace(std::make_pair(id, key),
                          slot == dc.storage.end() ? 0 : slot->second);
  }
  // Write post-images, only meaningful for runs that halted ok (a trap
  // rolls its writes back; validation still uses the observed set).
  if (spec.result.ok()) {
    for (const Word key : spec.trace.writes) {
      auto slot = working.find(key);
      spec.writes[key] = slot == working.end() ? 0 : slot->second;
    }
  }
  return spec;
}

bool ContractStore::speculation_current(const SpeculativeCall& spec) const {
  for (const auto& [cell, seen] : spec.observed) {
    Word current = 0;
    auto it = contracts_.find(cell.first);
    if (it != contracts_.end()) {
      auto slot = it->second.storage.find(cell.second);
      if (slot != it->second.storage.end()) current = slot->second;
    }
    if (current != seen) return false;
  }
  return true;
}

void ContractStore::commit_speculation(const SpeculativeCall& spec,
                                       Host* event_host) {
  auto it = contracts_.find(spec.contract_id);
  MC_ASSERT(it != contracts_.end(),
            "committing a speculative call into a missing contract");
  MC_ASSERT(spec.result.ok(), "committing a trapped speculative call");
  for (const auto& [key, value] : spec.writes) {
    if (value == 0)
      it->second.storage.erase(key);  // the VM keeps no zero entries
    else
      it->second.storage[key] = value;
  }
  for (const Event& event : spec.events) {
    events_.push_back(event);
    if (event_host != nullptr) event_host->on_event(event);
  }
}

const DeployedContract* ContractStore::contract(Word id) const {
  auto it = contracts_.find(id);
  return it == contracts_.end() ? nullptr : &it->second;
}

std::optional<ExecResult> ContractStore::call(Word id, ExecContext ctx,
                                              Host& oracle_host) {
  auto it = contracts_.find(id);
  if (it == contracts_.end()) return std::nullopt;
  ctx.contract_id = id;
  CapturingHost host(oracle_host, events_, contracts_);
#if defined(MEDCHAIN_AUDIT)
  // Audit builds mechanically enforce the analyzer's soundness contract:
  // record the dynamic footprint/stack of every call and require it to be
  // contained in the static bounds proven at deployment.
  ExecTrace trace;
  ctx.trace = &trace;
  const ExecResult result =
      execute(BytesView(it->second.code), it->second.storage, ctx, host);
  const std::string violation =
      analysis::soundness_violation(it->second.report, trace, result);
  MC_DCHECK(violation.empty(),
            "static analysis soundness contract violated on contract call");
  const std::string concrete_violation =
      concretization_check(it->second, ctx, trace);
  MC_DCHECK(concrete_violation.empty(),
            "concretized footprint missed a traced cell on contract call");
  return result;
#else
  return execute(BytesView(it->second.code), it->second.storage, ctx, host);
#endif
}

std::optional<ExecResult> ContractStore::call(Word id, ExecContext ctx) {
  NullHost null_host;
  return call(id, std::move(ctx), null_host);
}

std::vector<Event> ContractStore::events_since(std::size_t from_index) const {
  if (from_index >= events_.size()) return {};
  return std::vector<Event>(events_.begin() +
                                static_cast<std::ptrdiff_t>(from_index),
                            events_.end());
}

void ContractStore::snapshot(std::uint64_t height) {
  snapshots_[height] = Snapshot{contracts_, events_.size(), nonce_};
}

void ContractStore::rollback_to(std::uint64_t height) {
  auto it = snapshots_.upper_bound(height);
  if (it == snapshots_.begin()) {
    contracts_.clear();
    events_.clear();
    nonce_ = 0;
  } else {
    --it;
    contracts_ = it->second.contracts;
    events_.resize(it->second.event_count);
    nonce_ = it->second.nonce;
  }
  // Drop snapshots newer than the restore point.
  snapshots_.erase(snapshots_.upper_bound(height), snapshots_.end());
}

Hash256 ContractStore::digest() const {
  ByteWriter w;
  for (const auto& [id, dc] : contracts_) {
    w.u64(id);
    w.u64(dc.deployer);
    w.bytes(BytesView(dc.code));
    for (const auto& [key, value] : dc.storage) {
      w.u64(key);
      w.u64(value);
    }
  }
  w.u64(events_.size());
  return crypto::sha256(BytesView(w.data()));
}

}  // namespace mc::vm
