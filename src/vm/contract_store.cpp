#include "vm/contract_store.hpp"

#include "audit/check.hpp"
#include "common/serial.hpp"
#include "crypto/sha256.hpp"

namespace mc::vm {
namespace {

/// Forwards oracle calls to the outer host, logs events locally, and
/// serves cross-contract reads from the store's committed state (so
/// SXLOAD is deterministic on-chain data, never an off-chain call).
class CapturingHost : public Host {
 public:
  CapturingHost(Host& inner, std::vector<Event>& sink,
                const std::map<Word, DeployedContract>& contracts)
      : inner_(inner), sink_(sink), contracts_(contracts) {}

  std::optional<Word> oracle(Word request) override {
    return inner_.oracle(request);
  }

  void on_event(const Event& event) override {
    sink_.push_back(event);
    inner_.on_event(event);
  }

  std::optional<Word> foreign_storage(Word contract_id, Word key) override {
    auto it = contracts_.find(contract_id);
    if (it == contracts_.end()) return 0;  // unknown contract reads as 0
    auto slot = it->second.storage.find(key);
    return slot == it->second.storage.end() ? 0 : slot->second;
  }

 private:
  Host& inner_;
  std::vector<Event>& sink_;
  const std::map<Word, DeployedContract>& contracts_;
};

}  // namespace

Word ContractStore::deploy(Bytes code, Word deployer, std::uint64_t height) {
  analysis::AnalysisReport report = analysis::analyze(BytesView(code));
  const analysis::AdmissionVerdict verdict = analysis::admit(report, policy_);
  if (!verdict.admitted) throw AdmissionError(verdict.reason);

  ByteWriter w;
  w.bytes(BytesView(code));
  w.u64(deployer);
  w.u64(nonce_++);
  const Word id = crypto::sha256(BytesView(w.data())).prefix_u64();

  DeployedContract dc;
  dc.id = id;
  dc.deployer = deployer;
  dc.code = std::move(code);
  dc.deployed_height = height;
  dc.report = std::move(report);
  contracts_[id] = std::move(dc);
  return id;
}

const DeployedContract* ContractStore::contract(Word id) const {
  auto it = contracts_.find(id);
  return it == contracts_.end() ? nullptr : &it->second;
}

std::optional<ExecResult> ContractStore::call(Word id, ExecContext ctx,
                                              Host& oracle_host) {
  auto it = contracts_.find(id);
  if (it == contracts_.end()) return std::nullopt;
  ctx.contract_id = id;
  CapturingHost host(oracle_host, events_, contracts_);
#if defined(MEDCHAIN_AUDIT)
  // Audit builds mechanically enforce the analyzer's soundness contract:
  // record the dynamic footprint/stack of every call and require it to be
  // contained in the static bounds proven at deployment.
  ExecTrace trace;
  ctx.trace = &trace;
  const ExecResult result =
      execute(BytesView(it->second.code), it->second.storage, ctx, host);
  const std::string violation =
      analysis::soundness_violation(it->second.report, trace, result);
  MC_DCHECK(violation.empty(),
            "static analysis soundness contract violated on contract call");
  return result;
#else
  return execute(BytesView(it->second.code), it->second.storage, ctx, host);
#endif
}

std::optional<ExecResult> ContractStore::call(Word id, ExecContext ctx) {
  NullHost null_host;
  return call(id, std::move(ctx), null_host);
}

std::vector<Event> ContractStore::events_since(std::size_t from_index) const {
  if (from_index >= events_.size()) return {};
  return std::vector<Event>(events_.begin() +
                                static_cast<std::ptrdiff_t>(from_index),
                            events_.end());
}

void ContractStore::snapshot(std::uint64_t height) {
  snapshots_[height] = Snapshot{contracts_, events_.size(), nonce_};
}

void ContractStore::rollback_to(std::uint64_t height) {
  auto it = snapshots_.upper_bound(height);
  if (it == snapshots_.begin()) {
    contracts_.clear();
    events_.clear();
    nonce_ = 0;
  } else {
    --it;
    contracts_ = it->second.contracts;
    events_.resize(it->second.event_count);
    nonce_ = it->second.nonce;
  }
  // Drop snapshots newer than the restore point.
  snapshots_.erase(snapshots_.upper_bound(height), snapshots_.end());
}

Hash256 ContractStore::digest() const {
  ByteWriter w;
  for (const auto& [id, dc] : contracts_) {
    w.u64(id);
    w.u64(dc.deployer);
    w.bytes(BytesView(dc.code));
    for (const auto& [key, value] : dc.storage) {
      w.u64(key);
      w.u64(value);
    }
  }
  w.u64(events_.size());
  return crypto::sha256(BytesView(w.data()));
}

}  // namespace mc::vm
