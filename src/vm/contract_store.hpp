// Deployed-contract registry: code, storage, event log, snapshots.
//
// One ContractStore exists per blockchain node; since contract execution
// is deterministic, all honest nodes' stores stay identical — which the
// duplicated-execution tests assert literally via digest().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "vm/analysis/analysis.hpp"
#include "vm/vm.hpp"

namespace mc::vm {

/// Thrown by ContractStore::deploy when the static analyzer rejects the
/// code under the store's admission policy. Derives invalid_argument so
/// chain::Node::apply_block's existing handler marks the tx invalid.
class AdmissionError : public std::invalid_argument {
 public:
  explicit AdmissionError(const std::string& reason)
      : std::invalid_argument("contract admission rejected: " + reason) {}
};

struct DeployedContract {
  Word id = 0;
  Word deployer = 0;
  Bytes code;
  Storage storage;
  std::uint64_t deployed_height = 0;
  /// Static analysis computed once at deployment; the audit build checks
  /// every later call's dynamic trace against these bounds.
  analysis::AnalysisReport report;
};

class ContractStore {
 public:
  /// Deploy code; the id is derived from (code, deployer, store nonce) so
  /// repeated deployments get distinct ids deterministically. The code is
  /// statically analyzed and admitted under the store's policy first —
  /// rejection throws AdmissionError and deploys nothing.
  Word deploy(Bytes code, Word deployer, std::uint64_t height);

  /// Replace the admission policy applied by subsequent deploy() calls.
  void set_admission_policy(analysis::AdmissionPolicy policy) {
    policy_ = policy;
  }
  [[nodiscard]] const analysis::AdmissionPolicy& admission_policy() const {
    return policy_;
  }

  [[nodiscard]] bool exists(Word id) const { return contracts_.count(id) > 0; }
  [[nodiscard]] const DeployedContract* contract(Word id) const;

  /// Execute a call into `id`. Events emitted by a successful run are
  /// appended to the store's event log and forwarded to `oracle_host`.
  /// Returns nullopt when the contract does not exist.
  std::optional<ExecResult> call(Word id, ExecContext ctx, Host& oracle_host);

  /// Convenience call with a NullHost (no oracle, events logged only).
  std::optional<ExecResult> call(Word id, ExecContext ctx);

  /// All events ever emitted, oldest first.
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  /// Events with index >= `from_index` (monitor-node polling cursor).
  [[nodiscard]] std::vector<Event> events_since(std::size_t from_index) const;

  /// Capture a snapshot labeled with `height`.
  void snapshot(std::uint64_t height);

  /// Restore the newest snapshot labeled <= `height`; with none, resets
  /// to empty (height 0 == fresh store).
  void rollback_to(std::uint64_t height);

  /// Canonical digest over all contracts and storage (cross-node
  /// determinism checks).
  [[nodiscard]] Hash256 digest() const;

  [[nodiscard]] std::size_t size() const { return contracts_.size(); }

 private:
  struct Snapshot {
    std::map<Word, DeployedContract> contracts;
    std::size_t event_count = 0;
    std::uint64_t nonce = 0;
  };

  std::map<Word, DeployedContract> contracts_;  // ordered => stable digest
  std::vector<Event> events_;
  std::uint64_t nonce_ = 0;
  std::map<std::uint64_t, Snapshot> snapshots_;
  analysis::AdmissionPolicy policy_ = analysis::AdmissionPolicy::strict();
};

}  // namespace mc::vm
