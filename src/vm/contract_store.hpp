// Deployed-contract registry: code, storage, event log, snapshots.
//
// One ContractStore exists per blockchain node; since contract execution
// is deterministic, all honest nodes' stores stay identical — which the
// duplicated-execution tests assert literally via digest().
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "vm/analysis/analysis.hpp"
#include "vm/vm.hpp"

namespace mc::vm {

/// Thrown by ContractStore::deploy when the static analyzer rejects the
/// code under the store's admission policy. Derives invalid_argument so
/// chain::Node::apply_block's existing handler marks the tx invalid.
class AdmissionError : public std::invalid_argument {
 public:
  explicit AdmissionError(const std::string& reason)
      : std::invalid_argument("contract admission rejected: " + reason) {}
};

struct DeployedContract {
  Word id = 0;
  Word deployer = 0;
  Bytes code;
  Storage storage;
  std::uint64_t deployed_height = 0;
  /// Static analysis computed once at deployment; the audit build checks
  /// every later call's dynamic trace against these bounds.
  analysis::AnalysisReport report;
  /// Per-dispatch-entry footprint summaries with symbolic keys, computed
  /// once at deployment. The execution layer concretizes these against a
  /// tx's calldata to schedule on exact cells (DESIGN.md §12–13).
  std::vector<analysis::SelectorSummary> selector_summaries;
  /// Code contains Op::Oracle (scanned at deployment): such calls must
  /// not be re-run speculatively — a rerun would duplicate the external
  /// side effect — so the parallel scheduler executes them at their
  /// commit slot instead.
  bool uses_oracle = false;
};

/// One contract call executed speculatively against the committed store
/// (parallel scheduler, DESIGN.md §13). The store itself is untouched;
/// `writes` holds the post-image of every key the run stored (value 0
/// means *erase* — the VM never keeps zero-valued entries), `observed`
/// the value every read saw (own SLOADs and foreign SXLOADs alike), and
/// `events` the buffered emissions to append on commit.
struct SpeculativeCall {
  Word contract_id = 0;
  ExecResult result;
  std::map<Word, Word> writes;                    ///< key -> post value (0 = erase)
  std::map<std::pair<Word, Word>, Word> observed; ///< (contract, key) -> value
  std::vector<Event> events;
  ExecTrace trace;
};

class ContractStore {
 public:
  /// Deploy code; the id is derived from (code, deployer, store nonce) so
  /// repeated deployments get distinct ids deterministically. The code is
  /// statically analyzed and admitted under the store's policy first —
  /// rejection throws AdmissionError and deploys nothing.
  Word deploy(Bytes code, Word deployer, std::uint64_t height);

  /// Replace the admission policy applied by subsequent deploy() calls.
  void set_admission_policy(analysis::AdmissionPolicy policy) {
    policy_ = policy;
  }
  [[nodiscard]] const analysis::AdmissionPolicy& admission_policy() const {
    return policy_;
  }

  [[nodiscard]] bool exists(Word id) const { return contracts_.count(id) > 0; }
  [[nodiscard]] const DeployedContract* contract(Word id) const;

  /// Execute a call into `id`. Events emitted by a successful run are
  /// appended to the store's event log and forwarded to `oracle_host`.
  /// Returns nullopt when the contract does not exist.
  std::optional<ExecResult> call(Word id, ExecContext ctx, Host& oracle_host);

  /// Convenience call with a NullHost (no oracle, events logged only).
  std::optional<ExecResult> call(Word id, ExecContext ctx);

  // --- speculative execution (chain/execution scheduler) ----------------

  /// True when `id` exists and its code is oracle-free, i.e. a
  /// speculative run of it is safe to discard and repeat.
  [[nodiscard]] bool speculable(Word id) const;

  /// Execute a call WITHOUT mutating the store: storage writes, reads and
  /// events are captured into the returned SpeculativeCall. Oracle use
  /// traps (speculable() gates it out beforehand); foreign reads are
  /// served from committed state exactly as call() does. Returns nullopt
  /// for an unknown contract.
  [[nodiscard]] std::optional<SpeculativeCall> call_speculative(
      Word id, ExecContext ctx) const;

  /// Commit-time validation: every cell `spec` observed still holds the
  /// value it observed, so replaying it now would reproduce it verbatim.
  [[nodiscard]] bool speculation_current(const SpeculativeCall& spec) const;

  /// Apply a successful speculative run: fold its write-set into the
  /// contract's storage (0 erases) and append its events, forwarding each
  /// to `event_host` when non-null (monitor-node parity with call()).
  void commit_speculation(const SpeculativeCall& spec,
                          Host* event_host = nullptr);

  /// All events ever emitted, oldest first.
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

  /// Events with index >= `from_index` (monitor-node polling cursor).
  [[nodiscard]] std::vector<Event> events_since(std::size_t from_index) const;

  /// Capture a snapshot labeled with `height`.
  void snapshot(std::uint64_t height);

  /// Restore the newest snapshot labeled <= `height`; with none, resets
  /// to empty (height 0 == fresh store).
  void rollback_to(std::uint64_t height);

  /// Canonical digest over all contracts and storage (cross-node
  /// determinism checks).
  [[nodiscard]] Hash256 digest() const;

  [[nodiscard]] std::size_t size() const { return contracts_.size(); }

 private:
  struct Snapshot {
    std::map<Word, DeployedContract> contracts;
    std::size_t event_count = 0;
    std::uint64_t nonce = 0;
  };

  std::map<Word, DeployedContract> contracts_;  // ordered => stable digest
  std::vector<Event> events_;
  std::uint64_t nonce_ = 0;
  std::map<std::uint64_t, Snapshot> snapshots_;
  analysis::AdmissionPolicy policy_ = analysis::AdmissionPolicy::strict();
};

}  // namespace mc::vm
