#include "vm/opcode.hpp"

#include <array>
#include <utility>

namespace mc::vm {
namespace {

constexpr std::array<std::pair<std::string_view, Op>, 37> kMnemonics{{
    {"STOP", Op::Stop},       {"PUSH", Op::Push},
    {"POP", Op::Pop},         {"DUP", Op::Dup},
    {"SWAP", Op::Swap},       {"ADD", Op::Add},
    {"SUB", Op::Sub},         {"MUL", Op::Mul},
    {"DIV", Op::Div},         {"MOD", Op::Mod},
    {"LT", Op::Lt},           {"GT", Op::Gt},
    {"EQ", Op::Eq},           {"ISZERO", Op::IsZero},
    {"AND", Op::And},         {"OR", Op::Or},
    {"XOR", Op::Xor},         {"NOT", Op::Not},
    {"SHL", Op::Shl},         {"SHR", Op::Shr},
    {"JUMP", Op::Jump},       {"JUMPI", Op::JumpI},
    {"CALLDATALOAD", Op::CallDataLoad},
    {"CALLDATASIZE", Op::CallDataSize},
    {"SLOAD", Op::SLoad},     {"SSTORE", Op::SStore},
    {"SXLOAD", Op::SxLoad},
    {"CALLER", Op::Caller},   {"CALLVALUE", Op::CallValue},
    {"HEIGHT", Op::Height},   {"TIMESTAMP", Op::Timestamp},
    {"GASLEFT", Op::GasLeft}, {"EMIT", Op::Emit},
    {"HASHN", Op::HashN},     {"ORACLE", Op::Oracle},
    {"RETURN", Op::Return},   {"REVERT", Op::Revert},
}};

}  // namespace

std::optional<Op> op_from_mnemonic(std::string_view name) {
  for (const auto& [mnem, op] : kMnemonics)
    if (mnem == name) return op;
  return std::nullopt;
}

std::string_view mnemonic(Op op) {
  for (const auto& [mnem, candidate] : kMnemonics)
    if (candidate == op) return mnem;
  return "UNKNOWN";
}

bool is_valid_op(std::uint8_t byte) {
  for (const auto& [mnem, op] : kMnemonics)
    if (static_cast<std::uint8_t>(op) == byte) return true;
  return false;
}

}  // namespace mc::vm
