// Instruction set of the medchain contract VM.
//
// A gas-metered stack machine over 64-bit words, deliberately small: the
// paper's design keeps on-chain smart contracts "as light weight as
// possible, only functioning as the access policy control point" (§III),
// so the ISA covers arithmetic, control flow, keyed storage, events, and
// the oracle bridge — enough to be Turing-complete, and enough to measure
// the duplicated execution cost of anything heavier.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace mc::vm {

enum class Op : std::uint8_t {
  Stop = 0x00,   ///< halt, success, no return values
  Push = 0x01,   ///< push imm64
  Pop = 0x02,
  Dup = 0x03,    ///< imm8 depth: duplicate stack[-depth]
  Swap = 0x04,   ///< imm8 depth: swap top with stack[-depth]

  Add = 0x10,    ///< wrapping
  Sub = 0x11,
  Mul = 0x12,
  Div = 0x13,    ///< traps on divide-by-zero
  Mod = 0x14,    ///< traps on modulo-by-zero

  Lt = 0x20,
  Gt = 0x21,
  Eq = 0x22,
  IsZero = 0x23,
  And = 0x24,
  Or = 0x25,
  Xor = 0x26,
  Not = 0x27,
  Shl = 0x28,
  Shr = 0x29,

  Jump = 0x30,   ///< pop target; must be an instruction boundary
  JumpI = 0x31,  ///< pop target, pop cond; jump when cond != 0

  CallDataLoad = 0x40,  ///< pop word index; push calldata word (0 past end)
  CallDataSize = 0x41,  ///< push calldata size in words

  SLoad = 0x50,   ///< pop key; push storage[key]
  SStore = 0x51,  ///< pop key, pop value; storage[key] = value
  SxLoad = 0x52,  ///< pop contract id, pop key; push that contract's
                  ///< committed storage[key] (cross-contract read —
                  ///< lets the analytics contract enforce the policy
                  ///< contract's grants fully on-chain)

  Caller = 0x60,     ///< push caller id (u64-folded address)
  CallValue = 0x61,
  Height = 0x62,
  Timestamp = 0x63,
  GasLeft = 0x64,

  Emit = 0x70,    ///< imm8 n: pop topic, pop n args; append event
  HashN = 0x71,   ///< imm8 n: pop n words, push SHA-256 prefix word
  Oracle = 0x72,  ///< pop request word; push off-chain oracle response

  Return = 0x80,  ///< imm8 n: pop n return words, halt success
  Revert = 0x81,  ///< halt, failure, state changes discarded
};

/// Immediate operand width in bytes for an opcode (0, 1 or 8).
constexpr int immediate_width(Op op) {
  switch (op) {
    case Op::Push:
      return 8;
    case Op::Dup:
    case Op::Swap:
    case Op::Emit:
    case Op::HashN:
    case Op::Return:
      return 1;
    default:
      return 0;
  }
}

/// Gas charged per opcode (storage and crypto ops dominate, as on
/// production chains).
constexpr std::uint64_t gas_cost(Op op) {
  switch (op) {
    case Op::SStore:
      return 100;
    case Op::SLoad:
      return 20;
    case Op::SxLoad:
      return 40;
    case Op::HashN:
      return 30;
    case Op::Emit:
      return 50;
    case Op::Oracle:
      return 200;
    case Op::Jump:
    case Op::JumpI:
      return 8;
    default:
      return 3;
  }
}

/// Mnemonic for the assembler/disassembler; nullopt for unknown bytes.
std::optional<Op> op_from_mnemonic(std::string_view name);
std::string_view mnemonic(Op op);

/// True if the byte value corresponds to a defined opcode.
bool is_valid_op(std::uint8_t byte);

}  // namespace mc::vm
