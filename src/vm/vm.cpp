#include "vm/vm.hpp"

#include <algorithm>

#include "audit/check.hpp"
#include "common/serial.hpp"
#include "crypto/sha256.hpp"

namespace mc::vm {
namespace {

/// Instruction boundaries (valid jump targets) for a code blob.
std::vector<bool> jump_targets(BytesView code) {
  std::vector<bool> valid(code.size(), false);
  std::size_t pc = 0;
  while (pc < code.size()) {
    valid[pc] = true;
    if (!is_valid_op(code[pc])) break;
    pc += 1 + static_cast<std::size_t>(
                  immediate_width(static_cast<Op>(code[pc])));
  }
  return valid;
}

}  // namespace

std::string_view halt_name(Halt h) {
  switch (h) {
    case Halt::Stop: return "stop";
    case Halt::Return: return "return";
    case Halt::Revert: return "revert";
    case Halt::OutOfGas: return "out-of-gas";
    case Halt::StackUnderflow: return "stack-underflow";
    case Halt::StackOverflow: return "stack-overflow";
    case Halt::BadJump: return "bad-jump";
    case Halt::BadOpcode: return "bad-opcode";
    case Halt::DivideByZero: return "divide-by-zero";
    case Halt::OracleFailure: return "oracle-failure";
    case Halt::StepLimit: return "step-limit";
  }
  return "unknown";
}

bool code_well_formed(BytesView code) {
  std::size_t pc = 0;
  while (pc < code.size()) {
    if (!is_valid_op(code[pc])) return false;
    pc += 1 + static_cast<std::size_t>(
                  immediate_width(static_cast<Op>(code[pc])));
  }
  return pc == code.size();
}

ExecResult execute(BytesView code, Storage& storage, const ExecContext& ctx,
                   Host& host) {
  ExecResult result;
  Storage working = storage;  // all-or-nothing: commit on success
  std::vector<Word> stack;
  stack.reserve(64);
  std::vector<Event> events;
  const std::vector<bool> targets = jump_targets(code);

  std::size_t pc = 0;
  std::uint64_t gas = 0;

  const auto trap = [&](Halt h) {
    result.halt = h;
    result.gas_used = std::min(gas, ctx.gas_limit);
    return result;
  };

  const auto need = [&](std::size_t n) { return stack.size() >= n; };
  const auto pop = [&]() {
    const Word v = stack.back();
    stack.pop_back();
    return v;
  };

  while (pc < code.size()) {
    MC_DCHECK(stack.size() <= kMaxStack, "VM stack exceeded its hard bound");
    MC_DCHECK(gas <= ctx.gas_limit, "VM retired an instruction past its gas");
    if (!is_valid_op(code[pc])) return trap(Halt::BadOpcode);
    const Op op = static_cast<Op>(code[pc]);
    const int imm_width = immediate_width(op);
    if (pc + 1 + static_cast<std::size_t>(imm_width) > code.size())
      return trap(Halt::BadOpcode);

    gas += gas_cost(op);
    if (gas > ctx.gas_limit) return trap(Halt::OutOfGas);
    if (++result.steps > ctx.step_limit) return trap(Halt::StepLimit);

    Word imm = 0;
    for (int i = 0; i < imm_width; ++i)
      imm |= static_cast<Word>(code[pc + 1 + static_cast<std::size_t>(i)])
             << (8 * i);
    std::size_t next_pc = pc + 1 + static_cast<std::size_t>(imm_width);

    switch (op) {
      case Op::Stop:
        storage = std::move(working);
        for (const auto& ev : events) host.on_event(ev);
        result.halt = Halt::Stop;
        result.gas_used = gas;
        return result;

      case Op::Push:
        if (stack.size() >= kMaxStack) return trap(Halt::StackOverflow);
        stack.push_back(imm);
        break;

      case Op::Pop:
        if (!need(1)) return trap(Halt::StackUnderflow);
        stack.pop_back();
        break;

      case Op::Dup: {
        const std::size_t depth = static_cast<std::size_t>(imm);
        if (depth == 0 || !need(depth)) return trap(Halt::StackUnderflow);
        if (stack.size() >= kMaxStack) return trap(Halt::StackOverflow);
        stack.push_back(stack[stack.size() - depth]);
        break;
      }

      case Op::Swap: {
        const std::size_t depth = static_cast<std::size_t>(imm);
        if (depth == 0 || !need(depth + 1)) return trap(Halt::StackUnderflow);
        std::swap(stack.back(), stack[stack.size() - 1 - depth]);
        break;
      }

      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Div:
      case Op::Mod:
      case Op::Lt:
      case Op::Gt:
      case Op::Eq:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Shl:
      case Op::Shr: {
        if (!need(2)) return trap(Halt::StackUnderflow);
        const Word b = pop();
        const Word a = pop();
        Word out = 0;
        switch (op) {
          case Op::Add: out = a + b; break;
          case Op::Sub: out = a - b; break;
          case Op::Mul: out = a * b; break;
          case Op::Div:
            if (b == 0) return trap(Halt::DivideByZero);
            out = a / b;
            break;
          case Op::Mod:
            if (b == 0) return trap(Halt::DivideByZero);
            out = a % b;
            break;
          case Op::Lt: out = a < b ? 1 : 0; break;
          case Op::Gt: out = a > b ? 1 : 0; break;
          case Op::Eq: out = a == b ? 1 : 0; break;
          case Op::And: out = a & b; break;
          case Op::Or: out = a | b; break;
          case Op::Xor: out = a ^ b; break;
          case Op::Shl: out = b >= 64 ? 0 : a << b; break;
          case Op::Shr: out = b >= 64 ? 0 : a >> b; break;
          default: break;
        }
        stack.push_back(out);
        break;
      }

      case Op::IsZero:
      case Op::Not: {
        if (!need(1)) return trap(Halt::StackUnderflow);
        const Word a = pop();
        stack.push_back(op == Op::IsZero ? (a == 0 ? 1 : 0) : ~a);
        break;
      }

      case Op::Jump: {
        if (!need(1)) return trap(Halt::StackUnderflow);
        const Word target = pop();
        if (target >= code.size() || !targets[static_cast<std::size_t>(target)])
          return trap(Halt::BadJump);
        next_pc = static_cast<std::size_t>(target);
        break;
      }

      case Op::JumpI: {
        if (!need(2)) return trap(Halt::StackUnderflow);
        const Word target = pop();
        const Word cond = pop();
        if (cond != 0) {
          if (target >= code.size() ||
              !targets[static_cast<std::size_t>(target)])
            return trap(Halt::BadJump);
          next_pc = static_cast<std::size_t>(target);
        }
        break;
      }

      case Op::CallDataLoad: {
        if (!need(1)) return trap(Halt::StackUnderflow);
        const Word index = pop();
        stack.push_back(index < ctx.calldata.size()
                            ? ctx.calldata[static_cast<std::size_t>(index)]
                            : 0);
        break;
      }

      case Op::CallDataSize:
        if (stack.size() >= kMaxStack) return trap(Halt::StackOverflow);
        stack.push_back(ctx.calldata.size());
        break;

      case Op::SLoad: {
        if (!need(1)) return trap(Halt::StackUnderflow);
        const Word key = pop();
        if (ctx.trace != nullptr) ctx.trace->reads.insert(key);
        auto it = working.find(key);
        stack.push_back(it == working.end() ? 0 : it->second);
        break;
      }

      case Op::SxLoad: {
        if (!need(2)) return trap(Halt::StackUnderflow);
        const Word target = pop();
        const Word key = pop();
        if (ctx.trace != nullptr) ctx.trace->foreign_reads.emplace(target, key);
        const std::optional<Word> value = host.foreign_storage(target, key);
        if (!value.has_value()) return trap(Halt::OracleFailure);
        stack.push_back(*value);
        break;
      }

      case Op::SStore: {
        if (!need(2)) return trap(Halt::StackUnderflow);
        const Word key = pop();
        const Word value = pop();
        if (ctx.trace != nullptr) ctx.trace->writes.insert(key);
        if (value == 0)
          working.erase(key);
        else
          working[key] = value;
        break;
      }

      case Op::Caller:
      case Op::CallValue:
      case Op::Height:
      case Op::Timestamp:
      case Op::GasLeft: {
        // Environment reads grow the stack like PUSH and need the same
        // overflow trap (a CALLER-flood program must not blow the cap).
        if (stack.size() >= kMaxStack) return trap(Halt::StackOverflow);
        Word v = 0;
        switch (op) {
          case Op::Caller: v = ctx.caller; break;
          case Op::CallValue: v = ctx.call_value; break;
          case Op::Height: v = ctx.height; break;
          case Op::Timestamp: v = ctx.time_ms; break;
          case Op::GasLeft: v = ctx.gas_limit - gas; break;
          default: break;
        }
        stack.push_back(v);
        break;
      }

      case Op::Emit: {
        const std::size_t n = static_cast<std::size_t>(imm);
        if (!need(n + 1)) return trap(Halt::StackUnderflow);
        Event ev;
        ev.contract_id = ctx.contract_id;
        ev.height = ctx.height;
        ev.topic = pop();
        ev.args.resize(n);
        for (std::size_t i = 0; i < n; ++i) ev.args[n - 1 - i] = pop();
        events.push_back(std::move(ev));
        break;
      }

      case Op::HashN: {
        const std::size_t n = static_cast<std::size_t>(imm);
        if (n == 0 || !need(n)) return trap(Halt::StackUnderflow);
        ByteWriter w;
        for (std::size_t i = 0; i < n; ++i)
          w.u64(stack[stack.size() - n + i]);
        stack.resize(stack.size() - n);
        stack.push_back(crypto::sha256(BytesView(w.data())).prefix_u64());
        break;
      }

      case Op::Oracle: {
        if (!need(1)) return trap(Halt::StackUnderflow);
        const Word request = pop();
        const std::optional<Word> reply = host.oracle(request);
        if (!reply.has_value()) return trap(Halt::OracleFailure);
        stack.push_back(*reply);
        break;
      }

      case Op::Return: {
        const std::size_t n = static_cast<std::size_t>(imm);
        if (!need(n)) return trap(Halt::StackUnderflow);
        result.returned.assign(stack.end() - static_cast<std::ptrdiff_t>(n),
                               stack.end());
        storage = std::move(working);
        for (const auto& ev : events) host.on_event(ev);
        result.halt = Halt::Return;
        result.gas_used = gas;
        return result;
      }

      case Op::Revert:
        return trap(Halt::Revert);
    }
    if (ctx.trace != nullptr)
      ctx.trace->max_stack = std::max(ctx.trace->max_stack, stack.size());
    pc = next_pc;
  }

  // Falling off the end behaves like STOP.
  storage = std::move(working);
  for (const auto& ev : events) host.on_event(ev);
  result.halt = Halt::Stop;
  result.gas_used = gas;
  return result;
}

}  // namespace mc::vm
