// The medchain contract virtual machine.
//
// Deterministic, gas-metered execution of Op bytecode over 64-bit words.
// Determinism is what lets every blockchain node run the identical
// contract and reach the identical state — and the per-instruction gas
// counter is what lets the experiments price that duplication.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "vm/opcode.hpp"

namespace mc::vm {

using Word = std::uint64_t;

/// Hard cap on the operand stack; pushing past it traps StackOverflow.
/// Shared with the static analyzer, whose stack bounds are proven
/// against this same limit.
inline constexpr std::size_t kMaxStack = 1024;

/// Contract storage: persistent key/value words.
using Storage = std::map<Word, Word>;

/// Event appended by EMIT; the off-chain monitor node subscribes to these
/// (paper Fig. 3: "a monitor node is used to monitor all the related smart
/// contract events").
struct Event {
  Word contract_id = 0;
  Word topic = 0;
  std::vector<Word> args;
  std::uint64_t height = 0;
};

/// Why execution halted.
enum class Halt : std::uint8_t {
  Stop,
  Return,
  Revert,
  OutOfGas,
  StackUnderflow,
  StackOverflow,
  BadJump,
  BadOpcode,
  DivideByZero,
  OracleFailure,
  StepLimit,
};

[[nodiscard]] constexpr bool halted_ok(Halt h) {
  return h == Halt::Stop || h == Halt::Return;
}

std::string_view halt_name(Halt h);

struct ExecResult {
  Halt halt = Halt::Stop;
  std::uint64_t gas_used = 0;
  std::uint64_t steps = 0;  ///< instructions retired (energy accounting)
  std::vector<Word> returned;

  [[nodiscard]] bool ok() const { return halted_ok(halt); }
};

/// Dynamic execution trace, recorded when ExecContext::trace is set:
/// every storage key actually touched (including by runs that later
/// trapped and rolled back) and the peak stack depth. The static
/// analyzer's soundness contract is checked against this — see
/// vm/analysis/analysis.hpp soundness_violation().
struct ExecTrace {
  std::set<Word> reads;
  std::set<Word> writes;
  std::set<std::pair<Word, Word>> foreign_reads;  ///< (contract, key)
  std::size_t max_stack = 0;
};

/// Execution environment provided by the node.
struct ExecContext {
  Word contract_id = 0;
  Word caller = 0;       ///< u64-folded caller address
  Word call_value = 0;
  std::uint64_t height = 0;
  std::uint64_t time_ms = 0;
  std::uint64_t gas_limit = 1'000'000;
  std::uint64_t step_limit = 10'000'000;  ///< hard bound beyond gas
  std::vector<Word> calldata;
  ExecTrace* trace = nullptr;  ///< optional footprint/stack recording
};

/// Host hooks: the ORACLE opcode is the paper's on-chain/off-chain bridge
/// ("a special data oracle mechanism by remote procedure call", §IV).
class Host {
 public:
  virtual ~Host() = default;

  /// Answer an oracle request; nullopt traps the VM with OracleFailure.
  virtual std::optional<Word> oracle(Word request) = 0;

  /// Observe an emitted event (monitor-node subscription point).
  virtual void on_event(const Event& event) = 0;

  /// Serve SXLOAD: committed storage of another contract. nullopt traps
  /// (the default for hosts with no contract-store access); hosts backed
  /// by a ContractStore return 0 for unknown contracts/keys.
  virtual std::optional<Word> foreign_storage(Word /*contract_id*/,
                                              Word /*key*/) {
    return std::nullopt;
  }
};

/// A host that fails every oracle call and drops events.
class NullHost : public Host {
 public:
  std::optional<Word> oracle(Word) override { return std::nullopt; }
  void on_event(const Event&) override {}
};

/// Execute `code` against `storage`. On any failure halt, storage changes
/// made during the run are rolled back (all-or-nothing semantics).
/// Emitted events are delivered to the host only on success.
ExecResult execute(BytesView code, Storage& storage, const ExecContext& ctx,
                   Host& host);

/// Static bytecode sanity check: opcodes defined, immediates in bounds.
bool code_well_formed(BytesView code);

}  // namespace mc::vm
