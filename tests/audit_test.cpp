// ChainAuditor: a healthy simulated chain audits clean, and each class of
// injected corruption — broken hash link, reordered height, tampered state
// root, invalid quorum certificate, regressed timestamp, tampered tx — is
// detected and named in the structured report.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit/chain_auditor.hpp"
#include "chain/node.hpp"
#include "chain/pbft.hpp"
#include "chain/transaction.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"

namespace mc::audit {
namespace {

using chain::Block;
using chain::ChainParams;
using chain::ConsensusKind;
using chain::Node;
using chain::Transaction;

struct TestChain {
  ChainParams params;
  std::unique_ptr<Node> node;
  std::vector<crypto::PrivateKey> clients;
  std::vector<std::uint64_t> nonces;
};

/// Grow a PoS-style chain of `height` blocks on a single node, committing
/// a transfer every few blocks so the ledger (and state roots) evolve.
TestChain build_chain(std::uint64_t height, std::size_t client_count = 4) {
  TestChain tc;
  tc.params.consensus = ConsensusKind::ProofOfStake;
  for (std::size_t i = 0; i < client_count; ++i) {
    auto key = crypto::key_from_seed("audit-client-" + std::to_string(i));
    tc.params.premine.emplace_back(crypto::address_of(key.pub),
                                   chain::Amount{10'000'000});
    tc.clients.push_back(key);
    tc.nonces.push_back(0);
  }
  const Block genesis = chain::make_genesis("audit-chain", ~0ULL);
  tc.node = std::make_unique<Node>(crypto::key_from_seed("audit-proposer"),
                                   tc.params, genesis);

  for (std::uint64_t h = 1; h <= height; ++h) {
    if (h % 5 == 0) {
      const std::size_t c = h % tc.clients.size();
      const std::size_t to = (c + 1) % tc.clients.size();
      tc.node->submit(chain::make_transfer(
          tc.clients[c], crypto::address_of(tc.clients[to].pub),
          /*amount=*/10 + h, tc.nonces[c]++));
    }
    const Block block = tc.node->propose(/*time_ms=*/h * 1'000);
    EXPECT_EQ(tc.node->receive(block), chain::BlockVerdict::Accepted);
  }
  EXPECT_EQ(tc.node->height(), height);
  return tc;
}

std::vector<Block> best_blocks(const Node& node) {
  std::vector<Block> out;
  for (const auto& id : node.best_chain()) out.push_back(*node.block(id));
  return out;
}

TEST(ChainAuditor, HealthyThousandBlockChainPasses) {
  const TestChain tc = build_chain(1000);
  const ChainAuditor auditor(tc.params);
  const AuditReport report = auditor.audit_node(*tc.node);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.blocks_checked, 1001u);  // genesis + 1000
  EXPECT_EQ(report.txs_replayed, 200u);     // one transfer every 5 blocks
}

TEST(ChainAuditor, DetectsBrokenHashLink) {
  const TestChain tc = build_chain(50);
  const ChainAuditor auditor(tc.params);
  std::vector<Block> blocks = best_blocks(*tc.node);

  blocks[25].header.parent = crypto::sha256("not the parent");
  const AuditReport report = auditor.audit_blocks(blocks);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::BrokenHashLink)) << report.summary();
}

TEST(ChainAuditor, DetectsReorderedHeight) {
  const TestChain tc = build_chain(50);
  const ChainAuditor auditor(tc.params);
  std::vector<Block> blocks = best_blocks(*tc.node);

  blocks[30].header.height = 17;  // out-of-order height
  const AuditReport report = auditor.audit_blocks(blocks);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::HeightDiscontinuity))
      << report.summary();
}

TEST(ChainAuditor, DetectsTamperedStateRoot) {
  const TestChain tc = build_chain(50);
  const ChainAuditor auditor(tc.params);
  std::vector<Block> blocks = best_blocks(*tc.node);

  blocks[40].header.state_root = crypto::sha256("cooked books");
  const AuditReport report = auditor.audit_blocks(blocks);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::BadStateRoot)) << report.summary();
}

TEST(ChainAuditor, DetectsRegressedTimestamp) {
  const TestChain tc = build_chain(50);
  const ChainAuditor auditor(tc.params);
  std::vector<Block> blocks = best_blocks(*tc.node);

  blocks[20].header.time_ms = 1;  // before its parent
  const AuditReport report = auditor.audit_blocks(blocks);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::NonMonotoneTimestamp))
      << report.summary();
}

TEST(ChainAuditor, DetectsTamperedTransaction) {
  const TestChain tc = build_chain(50);
  const ChainAuditor auditor(tc.params);
  std::vector<Block> blocks = best_blocks(*tc.node);

  for (auto& block : blocks) {
    if (block.txs.empty()) continue;
    block.txs[0].amount += 1'000'000;  // raise the payout, keep the root
    break;
  }
  const AuditReport report = auditor.audit_blocks(blocks);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has(ViolationKind::BadTxRoot)) << report.summary();
}

TEST(ChainAuditor, MempoolConsistencyChecks) {
  TestChain tc = build_chain(20);
  const ChainAuditor auditor(tc.params);

  // A stale-nonce transaction: nonce 0 was consumed by the chain already.
  Transaction stale = chain::make_transfer(
      tc.clients[0], crypto::address_of(tc.clients[1].pub), 5, /*nonce=*/0);
  ASSERT_TRUE(tc.node->mempool().add(stale));

  const AuditReport report = auditor.audit_node(*tc.node);
  EXPECT_TRUE(report.has(ViolationKind::MempoolStaleNonce))
      << report.summary();
}

TEST(ChainAuditor, FlagsOrphanPoolOverflow) {
  TestChain tc = build_chain(5);

  // Grow a divergent fork and feed its non-connecting blocks in: each one
  // lands in the orphan pool.
  Node fork(crypto::key_from_seed("audit-forker"), tc.params,
            chain::make_genesis("audit-chain", ~0ULL));
  std::vector<Block> fork_blocks;
  for (std::uint64_t h = 1; h <= 4; ++h) {
    fork_blocks.push_back(fork.propose(h * 7'000));
    ASSERT_EQ(fork.receive(fork_blocks.back()), chain::BlockVerdict::Accepted);
  }
  for (std::size_t i = 1; i < fork_blocks.size(); ++i)
    ASSERT_EQ(tc.node->receive(fork_blocks[i]), chain::BlockVerdict::Orphan);
  ASSERT_EQ(tc.node->orphan_count(), 3u);

  // An auditor holding a stricter cap than the node enforced flags the
  // pool; one matching the node's own cap stays clean.
  ChainParams strict = tc.params;
  strict.max_orphans = 2;
  const AuditReport flagged = ChainAuditor(strict).audit_node(*tc.node);
  EXPECT_TRUE(flagged.has(ViolationKind::OrphanPoolOverflow))
      << flagged.summary();
  const AuditReport clean = ChainAuditor(tc.params).audit_node(*tc.node);
  EXPECT_FALSE(clean.has(ViolationKind::OrphanPoolOverflow))
      << clean.summary();
}

TEST(ChainAuditor, QuorumCertsFromHealthyPbftClusterPass) {
  chain::PbftCluster cluster(sim::Network::uniform(4, 2));
  for (int i = 0; i < 8; ++i)
    cluster.submit(crypto::sha256("request-" + std::to_string(i)));
  cluster.run();
  ASSERT_EQ(cluster.commits().size(), 8u);

  const ChainAuditor auditor(ChainParams{});
  for (sim::NodeId id = 0; id < cluster.size(); ++id) {
    const auto certs = cluster.commit_certs(id);
    const AuditReport report =
        auditor.audit_quorum_certs(certs, cluster.size());
    EXPECT_TRUE(report.ok()) << "replica " << id << ":\n" << report.summary();
  }
}

TEST(ChainAuditor, DetectsInvalidQuorumCert) {
  const ChainAuditor auditor(ChainParams{});

  // 7 replicas -> f = 2 -> quorum 5.
  QuorumCert too_small{0, 1, crypto::sha256("d1"), {0, 1, 2, 3}};
  QuorumCert unknown_voter{0, 2, crypto::sha256("d2"), {0, 1, 2, 3, 99}};
  QuorumCert duplicate{0, 3, crypto::sha256("d3"), {0, 0, 1, 2, 3}};
  QuorumCert fork_a{0, 4, crypto::sha256("d4"), {0, 1, 2, 3, 4}};
  QuorumCert fork_b{0, 4, crypto::sha256("d4'"), {0, 1, 2, 3, 5}};

  const AuditReport report = auditor.audit_quorum_certs(
      {too_small, unknown_voter, duplicate, fork_a, fork_b}, 7);
  EXPECT_TRUE(report.has(ViolationKind::QuorumTooSmall)) << report.summary();
  EXPECT_TRUE(report.has(ViolationKind::QuorumUnknownVoter));
  EXPECT_TRUE(report.has(ViolationKind::QuorumDuplicateVoter));
  EXPECT_TRUE(report.has(ViolationKind::QuorumConflictingDigest));
  EXPECT_EQ(report.certs_checked, 5u);
}

TEST(ChainAuditor, ReportSummaryNamesViolations) {
  const TestChain tc = build_chain(10);
  const ChainAuditor auditor(tc.params);
  std::vector<Block> blocks = best_blocks(*tc.node);
  blocks[5].header.parent = Hash256{};
  const std::string text = auditor.audit_blocks(blocks).summary();
  EXPECT_NE(text.find("broken-hash-link"), std::string::npos) << text;
}

}  // namespace
}  // namespace mc::audit
