// Lightning-channel and sharding baseline tests (§I comparisons).
#include <gtest/gtest.h>

#include "chain/lightning.hpp"
#include "chain/sharding.hpp"

namespace mc::chain {
namespace {

TEST(Lightning, ChannelLifecycleConservesValue) {
  const auto alice = crypto::key_from_seed("alice");
  const auto bob = crypto::key_from_seed("bob");
  PaymentChannel channel(alice, bob, 1'000, 500);
  EXPECT_EQ(channel.latest().balance_a + channel.latest().balance_b, 1'500u);

  EXPECT_TRUE(channel.pay(200));   // A -> B
  EXPECT_TRUE(channel.pay(-50));   // B -> A
  EXPECT_EQ(channel.latest().balance_a, 850u);
  EXPECT_EQ(channel.latest().balance_b, 650u);
  EXPECT_EQ(channel.latest().balance_a + channel.latest().balance_b, 1'500u);
  EXPECT_EQ(channel.offchain_payments(), 2u);
  EXPECT_EQ(channel.latest().revision, 2u);
}

TEST(Lightning, OverdraftRefused) {
  const auto alice = crypto::key_from_seed("alice");
  const auto bob = crypto::key_from_seed("bob");
  PaymentChannel channel(alice, bob, 100, 0);
  EXPECT_FALSE(channel.pay(101));
  EXPECT_FALSE(channel.pay(-1));  // B holds nothing
  EXPECT_TRUE(channel.pay(100));
  EXPECT_EQ(channel.latest().balance_a, 0u);
}

TEST(Lightning, UpdatesAreMutuallySigned) {
  const auto alice = crypto::key_from_seed("alice");
  const auto bob = crypto::key_from_seed("bob");
  PaymentChannel channel(alice, bob, 500, 500);
  channel.pay(123);
  EXPECT_TRUE(channel.update_valid(channel.latest()));

  ChannelUpdate forged = channel.latest();
  forged.balance_a += 100;  // unilateral edit invalidates both sigs
  EXPECT_FALSE(channel.update_valid(forged));
}

TEST(Lightning, CloseSettlesOnChainAndFreezesChannel) {
  const auto alice = crypto::key_from_seed("alice");
  const auto bob = crypto::key_from_seed("bob");
  PaymentChannel channel(alice, bob, 300, 300);
  channel.pay(100);
  const Transaction settle = channel.close();
  EXPECT_TRUE(settle.verify_signature());
  EXPECT_EQ(channel.phase(), ChannelPhase::Closed);
  EXPECT_FALSE(channel.pay(10));  // no payments after close
  EXPECT_TRUE(channel.funding_tx().verify_signature());
}

TEST(Lightning, LedgerReductionFactor) {
  // 10'000 payments over 20 channels: ledger sees 40 txs instead of
  // 10'000 — a 250x reduction, but each on-chain tx is still validated
  // by every node (duplicated computing remains).
  const auto cmp = compare_lightning(10'000, 20, 100);
  EXPECT_EQ(cmp.onchain_txs_lightning, 40u);
  EXPECT_DOUBLE_EQ(cmp.ledger_reduction_factor, 250.0);
  EXPECT_EQ(cmp.validations_lightning, 4'000u);  // 40 txs x 100 nodes
  EXPECT_EQ(cmp.validations_plain, 1'000'000u);
}

struct ShardFixture {
  crypto::PrivateKey keys[6];
  ShardFixture() {
    for (int i = 0; i < 6; ++i)
      keys[i] = crypto::key_from_seed("acct-" + std::to_string(i));
  }
  [[nodiscard]] Address addr(int i) const {
    return crypto::address_of(keys[i].pub);
  }
};

TEST(Sharding, IntraAndCrossShardTransfers) {
  ShardFixture f;
  ShardedLedger ledger(4, 3);
  for (int i = 0; i < 6; ++i) ledger.credit(f.addr(i), 10'000'000);

  std::uint64_t nonces[6] = {};
  std::size_t intra = 0, cross = 0;
  for (int from = 0; from < 6; ++from) {
    for (int to = 0; to < 6; ++to) {
      if (from == to) continue;
      const Transaction tx = make_transfer(
          f.keys[from], f.addr(to), 100, nonces[from]++);
      ASSERT_TRUE(ledger.process(tx)) << from << "->" << to;
      if (ledger.shard_of(f.addr(from)) == ledger.shard_of(f.addr(to)))
        ++intra;
      else
        ++cross;
    }
  }
  EXPECT_EQ(ledger.stats().intra_shard_txs, intra);
  EXPECT_EQ(ledger.stats().cross_shard_txs, cross);
  // Value conserved: 6 accounts each sent 5x100 and received 5x100;
  // only fees drained.
  for (int i = 0; i < 6; ++i)
    EXPECT_LE(ledger.balance(f.addr(i)), 10'000'000u);
}

TEST(Sharding, ReplayRejectedAsDoubleSpend) {
  ShardFixture f;
  ShardedLedger ledger(2, 3);
  ledger.credit(f.addr(0), 1'000'000);
  const Transaction tx = make_transfer(f.keys[0], f.addr(1), 10, 0);
  EXPECT_TRUE(ledger.process(tx));
  EXPECT_TRUE(ledger.seen(tx.id()));
  EXPECT_FALSE(ledger.process(tx));  // replayed
  EXPECT_GE(ledger.stats().aborted, 1u);
}

TEST(Sharding, ValidationCountsShowParallelism) {
  // Same workload, sharded vs unsharded: per-tx validations drop from
  // total_nodes to nodes_per_shard for intra-shard traffic.
  ShardFixture f;
  ShardedLedger ledger(4, 2);
  ledger.credit(f.addr(0), 1'000'000);
  ledger.credit(f.addr(1), 1'000'000);
  std::uint64_t nonce = 0;
  for (int i = 0; i < 10; ++i)
    ledger.process(make_transfer(f.keys[0], f.addr(1), 1, nonce++));
  const auto& stats = ledger.stats();
  const std::uint64_t unsharded_validations = 10 * ledger.total_nodes();
  EXPECT_LT(stats.validations, unsharded_validations);
  // Cross-shard 2PC pays lock messages; intra pays none.
  if (stats.cross_shard_txs == 0) EXPECT_EQ(stats.lock_messages, 0u);
  if (stats.cross_shard_txs > 0) EXPECT_GT(stats.lock_messages, 0u);
}

TEST(Sharding, InsufficientFundsAborts) {
  ShardFixture f;
  ShardedLedger ledger(2, 2);
  ledger.credit(f.addr(0), 10);  // can't even cover gas
  EXPECT_FALSE(
      ledger.process(make_transfer(f.keys[0], f.addr(1), 1'000'000, 0)));
  EXPECT_GE(ledger.stats().aborted, 1u);
}

TEST(Sharding, InvalidConstruction) {
  EXPECT_THROW(ShardedLedger(0, 2), std::invalid_argument);
  EXPECT_THROW(ShardedLedger(2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mc::chain
