// BlockValidator + memoized content-id tests: parallel/sequential verdict
// equivalence, deterministic first-failure reporting, cache correctness
// under mutation, and the at-most-one-digest guarantee.
#include <gtest/gtest.h>

#include <vector>

#include "chain/block.hpp"
#include "chain/block_validator.hpp"
#include "chain/transaction.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "crypto/sha256.hpp"

namespace mc::chain {
namespace {

Block make_block(std::size_t txs, const std::string& tag = "bv") {
  const auto sender = crypto::key_from_seed(tag + "-sender");
  const auto to = crypto::address_of(crypto::key_from_seed(tag + "-to").pub);
  Block block;
  for (std::size_t i = 0; i < txs; ++i)
    block.txs.push_back(make_transfer(sender, to, 1 + i, i));
  block.header.tx_root = block.compute_tx_root();
  return block;
}

TEST(BlockValidator, AcceptsValidBlockSeqAndParallel) {
  const Block block = make_block(32);
  ThreadPool pool(4);
  const BlockValidator seq;
  const BlockValidator par(&pool);

  const BlockValidation a = seq.validate(block);
  const BlockValidation b = par.validate(block);
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(a.first_invalid_tx, -1);
  EXPECT_EQ(b.first_invalid_tx, -1);
  EXPECT_EQ(a.computed_tx_root, b.computed_tx_root);
  EXPECT_EQ(a.computed_tx_root, block.header.tx_root);
}

TEST(BlockValidator, ReportsLowestFailingIndexDeterministically) {
  ThreadPool pool(4);
  const BlockValidator par(&pool, /*min_parallel_txs=*/1);
  const BlockValidator seq;

  Block block = make_block(64);
  // Corrupt several signatures; the verdict must always be the lowest
  // index regardless of worker completion order.
  for (std::size_t bad : {41u, 17u, 58u}) block.txs[bad].sig.s ^= 1;
  block.header.tx_root = block.compute_tx_root();  // root over corrupted txs

  for (int round = 0; round < 10; ++round) {
    const BlockValidation v = par.validate(block);
    EXPECT_EQ(v.first_invalid_tx, 17);
    EXPECT_TRUE(v.tx_root_ok);
    EXPECT_FALSE(v.ok());
  }
  EXPECT_EQ(seq.validate(block).first_invalid_tx, 17);
}

TEST(BlockValidator, DetectsTxRootMismatch) {
  Block block = make_block(8);
  block.header.tx_root.data[0] ^= 0xff;
  ThreadPool pool(2);
  for (const BlockValidator& v :
       {BlockValidator{}, BlockValidator{&pool, 1}}) {
    const BlockValidation r = v.validate(block);
    EXPECT_FALSE(r.tx_root_ok);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.first_invalid_tx, -1);  // signatures are all fine
  }
}

TEST(BlockValidator, ComputeTxRootMatchesBlock) {
  const Block block = make_block(100);
  ThreadPool pool(4);
  const BlockValidator par(&pool, 1);
  EXPECT_EQ(par.compute_tx_root(block), block.compute_tx_root());
}

TEST(BlockValidator, SmallBlocksFallBackToSequential) {
  // Below min_parallel_txs the pool is not used; verdicts identical.
  const Block block = make_block(3);
  ThreadPool pool(4);
  const BlockValidator v(&pool, /*min_parallel_txs=*/8);
  EXPECT_TRUE(v.validate(block).ok());
}

TEST(BlockValidator, BatchAndPerTxVerdictsIdentical) {
  // Batch on vs off, pool vs no pool, valid and corrupted blocks: the
  // verdict (lowest failing index) must be identical everywhere.
  ThreadPool pool(4);
  const std::vector<BlockValidator> validators = {
      BlockValidator{},                                    // seq, batch
      BlockValidator{nullptr, 8, false},                   // seq, per-tx
      BlockValidator{&pool, 1, true, /*batch_salt=*/7},    // pooled batch
      BlockValidator{&pool, 1, false},                     // pooled per-tx
  };
  Rng rng(0xbadc0de);
  for (int round = 0; round < 6; ++round) {
    Block block = make_block(70, "batch-eq-" + std::to_string(round));
    std::ptrdiff_t expect = -1;
    if (round > 0) {
      std::vector<std::size_t> bad;
      for (std::size_t i = 0; i < block.txs.size(); ++i)
        if (rng.bernoulli(0.1)) bad.push_back(i);
      if (bad.empty()) bad.push_back(rng.uniform(block.txs.size()));
      for (std::size_t i : bad) block.txs[i].sig.s ^= 1;
      expect = static_cast<std::ptrdiff_t>(bad.front());
      block.header.tx_root = block.compute_tx_root();
    }
    for (const BlockValidator& v : validators)
      EXPECT_EQ(v.validate(block).first_invalid_tx, expect)
          << "round " << round;
  }
}

TEST(BlockValidator, BatchVerdictIndependentOfChunkLayout) {
  // Different pool sizes produce different chunkings; the verdict must
  // not move. Corruptions placed to straddle likely chunk boundaries.
  Block block = make_block(200, "chunk-layout");
  for (std::size_t bad : {199u, 64u, 63u}) block.txs[bad].sig.s ^= 1;
  block.header.tx_root = block.compute_tx_root();

  const BlockValidator seq(nullptr, 8, false);
  ASSERT_EQ(seq.validate(block).first_invalid_tx, 63);
  for (std::size_t workers : {2u, 3u, 4u, 7u}) {
    ThreadPool pool(workers);
    const BlockValidator v(&pool, 1, true, /*batch_salt=*/workers);
    EXPECT_EQ(v.validate(block).first_invalid_tx, 63)
        << workers << " workers";
  }
}

TEST(BatchVerifySignatures, AddressBindingCapsTheScan) {
  // An address-binding failure at index k must win over any signature
  // failure later than k, and lose to one earlier — exactly what a
  // sequential verify_signature() scan reports.
  Block block = make_block(20, "addr-cap");
  block.txs[11].from.data[0] ^= 0xff;  // binding failure at 11
  block.txs[15].sig.s ^= 1;            // sig failure after it
  Rng rng(1);
  EXPECT_EQ(batch_verify_signatures(block.txs, rng), 11);

  block.txs[4].sig.s ^= 1;  // sig failure before the binding failure
  Rng rng2(2);
  EXPECT_EQ(batch_verify_signatures(block.txs, rng2), 4);

  // Reference: the per-tx scan agrees.
  std::ptrdiff_t seq = -1;
  for (std::size_t i = 0; i < block.txs.size(); ++i)
    if (!block.txs[i].verify_signature()) {
      seq = static_cast<std::ptrdiff_t>(i);
      break;
    }
  EXPECT_EQ(seq, 4);
}

TEST(CachedId, MutatingDecodedTransactionChangesId) {
  const auto alice = crypto::key_from_seed("cached-id-alice");
  Transaction tx = make_transfer(
      alice, crypto::address_of(crypto::key_from_seed("cid-bob").pub), 7, 0);
  Transaction decoded = Transaction::decode(BytesView(tx.encode()));
  const TxId before = decoded.id();
  EXPECT_EQ(before, tx.id());

  decoded.amount += 1;  // direct field mutation, no setter
  const TxId after = decoded.id();
  EXPECT_NE(before, after);
  // And the refreshed id matches a from-scratch hash of the new content.
  EXPECT_EQ(after, crypto::sha256d(BytesView(decoded.encode())));

  decoded.amount -= 1;  // restore: id must return to the original
  EXPECT_EQ(decoded.id(), before);
}

TEST(CachedId, MutatingDecodedHeaderChangesId) {
  Block block = make_block(4, "cid-hdr");
  block.header.height = 9;
  BlockHeader decoded = BlockHeader::decode(BytesView(block.header.encode()));
  const BlockId before = decoded.id();
  EXPECT_EQ(before, block.header.id());

  decoded.nonce ^= 0xdeadbeef;
  const BlockId after = decoded.id();
  EXPECT_NE(before, after);
  EXPECT_EQ(after, crypto::sha256d(BytesView(decoded.encode())));
}

TEST(CachedId, SignWithRefreshesStaleCache) {
  const auto alice = crypto::key_from_seed("cid-resign");
  Transaction tx = make_transfer(alice, Address{}, 1, 0);
  const TxId first = tx.id();
  tx.nonce = 5;
  tx.sign_with(alice);
  EXPECT_NE(tx.id(), first);
  EXPECT_EQ(tx.id(), crypto::sha256d(BytesView(tx.encode())));
}

#ifndef MEDCHAIN_AUDIT
// Audit builds cross-check every cache hit with a full recomputation, so
// the strict digest-count assertions only hold in plain builds.
TEST(CachedId, DigestComputedAtMostOncePerContent) {
  const auto alice = crypto::key_from_seed("cid-count");
  const Transaction tx = make_transfer(alice, Address{}, 3, 0);

  const TxId first = tx.id();  // cache warmed by sign_with already
  const std::uint64_t digests_before = crypto::Sha256::digest_count();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(tx.id(), first);
  EXPECT_EQ(crypto::Sha256::digest_count(), digests_before)
      << "warm id() calls must not re-hash";
}

TEST(CachedId, DecodeWarmsTheCacheWithoutExtraDigests) {
  const auto alice = crypto::key_from_seed("cid-decode-count");
  const Transaction tx = make_transfer(alice, Address{}, 3, 0);
  const Bytes wire = tx.encode();

  const Transaction decoded = Transaction::decode(BytesView(wire));
  const std::uint64_t digests_before = crypto::Sha256::digest_count();
  EXPECT_EQ(decoded.id(), tx.id());
  EXPECT_EQ(crypto::Sha256::digest_count(), digests_before)
      << "id() of a freshly decoded tx must be a pure cache hit";
}
#endif  // MEDCHAIN_AUDIT

TEST(EncodedSize, MatchesEncodeForRandomizedTransactions) {
  Rng rng(0x5eed);
  for (int i = 0; i < 200; ++i) {
    Transaction tx;
    tx.kind = static_cast<TxKind>(rng.uniform(4));
    for (auto& b : tx.from.data) b = static_cast<std::uint8_t>(rng.uniform(256));
    for (auto& b : tx.to.data) b = static_cast<std::uint8_t>(rng.uniform(256));
    tx.from_pub.y = rng.next();
    tx.nonce = rng.next();
    tx.amount = rng.next();
    tx.gas_limit = rng.next();
    tx.gas_price = rng.next();
    tx.payload = rng.bytes(rng.uniform(300));
    tx.sig.r = rng.next();
    tx.sig.s = rng.next();
    EXPECT_EQ(tx.encoded_size(), tx.encode().size());
    EXPECT_EQ(tx.wire_size(), tx.encode().size());
  }
}

TEST(EncodedSize, MatchesEncodeForRandomizedBlocks) {
  Rng rng(0xb10c);
  for (int i = 0; i < 20; ++i) {
    Block block = make_block(rng.uniform(10), "esz-" + std::to_string(i));
    block.header.nonce = rng.next();
    block.header.time_ms = rng.next();
    EXPECT_EQ(block.encoded_size(), block.encode().size());
    EXPECT_EQ(block.wire_size(), block.encode().size());
    EXPECT_EQ(block.header.encoded_size(), block.header.encode().size());
  }
}

TEST(EncodedSize, StreamedWritersAgreeWithByteWriter) {
  // The four writers must encode identically: digest(HashWriter stream)
  // == digest(ByteWriter buffer), size(SizeWriter) == buffer size.
  const auto alice = crypto::key_from_seed("writer-agree");
  const Transaction tx = make_transfer(alice, Address{}, 42, 7);

  const Bytes buf = tx.encode();
  HashWriter hw;
  tx.encode_to(hw);
  EXPECT_EQ(hw.digest(), crypto::sha256(BytesView(buf)));

  SizeWriter sw;
  tx.encode_to(sw);
  EXPECT_EQ(sw.size(), buf.size());

  FnvWriter fw;
  tx.encode_to(fw);
  EXPECT_EQ(fw.value(), fnv1a(BytesView(buf)));
}

}  // namespace
}  // namespace mc::chain
