// Blockchain substrate tests: transactions, blocks, state, mempool,
// PoW, PoS.
#include <gtest/gtest.h>

#include <tuple>

#include "chain/block.hpp"
#include "chain/mempool.hpp"
#include "chain/pos.hpp"
#include "chain/pow.hpp"
#include "chain/state.hpp"
#include "chain/transaction.hpp"
#include "crypto/sha256_batch.hpp"

namespace mc::chain {
namespace {

crypto::PrivateKey key_of(const std::string& who) {
  return crypto::key_from_seed(who);
}

TEST(Transaction, SignedRoundTrip) {
  const auto alice = key_of("alice");
  const auto bob = key_of("bob");
  Transaction tx = make_transfer(alice, crypto::address_of(bob.pub), 100, 0);
  EXPECT_TRUE(tx.verify_signature());

  const Transaction decoded = Transaction::decode(BytesView(tx.encode()));
  EXPECT_EQ(decoded.id(), tx.id());
  EXPECT_TRUE(decoded.verify_signature());
  EXPECT_EQ(decoded.amount, 100u);
  EXPECT_EQ(decoded.to, crypto::address_of(bob.pub));
}

TEST(Transaction, TamperBreaksSignature) {
  const auto alice = key_of("alice");
  Transaction tx =
      make_transfer(alice, crypto::address_of(key_of("bob").pub), 5, 0);
  tx.amount = 50'000;  // tamper after signing
  EXPECT_FALSE(tx.verify_signature());
}

TEST(Transaction, ForgedSenderRejected) {
  const auto alice = key_of("alice");
  Transaction tx =
      make_transfer(alice, crypto::address_of(key_of("bob").pub), 5, 0);
  tx.from = crypto::address_of(key_of("mallory").pub);  // claim other sender
  EXPECT_FALSE(tx.verify_signature());
}

TEST(Transaction, DecodeRejectsGarbage) {
  EXPECT_THROW(Transaction::decode(str_bytes("nonsense")), SerialError);
  Bytes bad{0x09};  // unknown kind
  bad.resize(200, 0);
  EXPECT_THROW(Transaction::decode(BytesView(bad)), SerialError);
}

TEST(Block, RoundTripAndTxRoot) {
  const auto alice = key_of("alice");
  Block block = make_genesis("test-chain", ~0ULL);
  block.header.height = 1;
  for (std::uint64_t n = 0; n < 5; ++n)
    block.txs.push_back(
        make_transfer(alice, crypto::address_of(key_of("bob").pub), 1, n));
  block.header.tx_root = block.compute_tx_root();
  EXPECT_TRUE(block.tx_root_valid());

  const Block decoded = Block::decode(BytesView(block.encode()));
  EXPECT_EQ(decoded.id(), block.id());
  EXPECT_EQ(decoded.txs.size(), 5u);
  EXPECT_TRUE(decoded.tx_root_valid());
}

TEST(Block, TxRootDetectsSwappedTransaction) {
  const auto alice = key_of("alice");
  Block block = make_genesis("test-chain", ~0ULL);
  block.txs.push_back(
      make_transfer(alice, crypto::address_of(key_of("bob").pub), 1, 0));
  block.header.tx_root = block.compute_tx_root();
  block.txs[0] =
      make_transfer(alice, crypto::address_of(key_of("eve").pub), 999, 0);
  EXPECT_FALSE(block.tx_root_valid());
}

TEST(Block, GenesisDeterministicPerTag) {
  EXPECT_EQ(make_genesis("a", 1).id(), make_genesis("a", 1).id());
  EXPECT_NE(make_genesis("a", 1).id(), make_genesis("b", 1).id());
}

TEST(WorldState, ApplyTransferMovesBalanceAndFee) {
  WorldState state;
  ChainParams params;
  const auto alice = key_of("alice");
  const auto bob_addr = crypto::address_of(key_of("bob").pub);
  const auto miner = crypto::address_of(key_of("miner").pub);
  state.credit(crypto::address_of(alice.pub), 1'000'000);

  const Transaction tx = make_transfer(alice, bob_addr, 1'000, 0);
  const ApplyResult r = state.apply(tx, miner, params);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.gas_used, params.transfer_gas);
  EXPECT_EQ(state.balance(bob_addr), 1'000u);
  EXPECT_EQ(state.balance(miner), params.transfer_gas * tx.gas_price);
  EXPECT_EQ(state.nonce(crypto::address_of(alice.pub)), 1u);
}

TEST(WorldState, RejectsBadNonceAndInsufficientFunds) {
  WorldState state;
  ChainParams params;
  const auto alice = key_of("alice");
  const auto bob_addr = crypto::address_of(key_of("bob").pub);
  state.credit(crypto::address_of(alice.pub), 30'000);

  EXPECT_FALSE(state.apply(make_transfer(alice, bob_addr, 1, 5), {}, params).ok);
  // amount + max fee exceeds balance
  EXPECT_FALSE(
      state.apply(make_transfer(alice, bob_addr, 20'000, 0), {}, params).ok);
}

TEST(WorldState, AnchorRecordedAndQueryable) {
  WorldState state;
  ChainParams params;
  const auto site = key_of("hospital");
  state.credit(crypto::address_of(site.pub), 1'000'000);

  const Hash256 digest = crypto::sha256("dataset-v1");
  Transaction tx;
  tx.kind = TxKind::Anchor;
  tx.payload = Bytes(digest.data.begin(), digest.data.end());
  tx.gas_limit = 30'000;
  tx.sign_with(site);
  ASSERT_TRUE(state.apply(tx, {}, params).ok);
  state.record_anchor(tx.from, digest, 7);
  EXPECT_TRUE(state.anchored(tx.from, digest));
  EXPECT_FALSE(state.anchored(tx.from, crypto::sha256("other")));
}

TEST(WorldState, AnchorPayloadMustBeDigestSized) {
  WorldState state;
  ChainParams params;
  const auto site = key_of("hospital");
  state.credit(crypto::address_of(site.pub), 1'000'000);
  Transaction tx;
  tx.kind = TxKind::Anchor;
  tx.payload = to_bytes("short");
  tx.gas_limit = 30'000;
  tx.sign_with(site);
  EXPECT_FALSE(state.validate(tx, params).ok);
}

TEST(WorldState, DigestReflectsState) {
  WorldState a, b;
  EXPECT_EQ(a.digest(), b.digest());
  a.credit(crypto::address_of(key_of("x").pub), 5);
  EXPECT_NE(a.digest(), b.digest());
  b.credit(crypto::address_of(key_of("x").pub), 5);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Mempool, FeePriorityRespectingNonces) {
  WorldState state;
  ChainParams params;
  const auto alice = key_of("alice");
  const auto bob = key_of("bob");
  const auto target = crypto::address_of(key_of("t").pub);
  state.credit(crypto::address_of(alice.pub), 10'000'000);
  state.credit(crypto::address_of(bob.pub), 10'000'000);

  Mempool pool;
  // Alice: nonce 0 at fee 1, nonce 1 at fee 10 (can't jump the queue).
  EXPECT_TRUE(pool.add(make_transfer(alice, target, 1, 0, 1)));
  EXPECT_TRUE(pool.add(make_transfer(alice, target, 1, 1, 10)));
  // Bob: nonce 0 at fee 5.
  EXPECT_TRUE(pool.add(make_transfer(bob, target, 1, 0, 5)));

  const auto selected = pool.select(state, params, 10);
  ASSERT_EQ(selected.size(), 3u);
  // Bob's fee-5 tx beats Alice's fee-1; Alice's fee-10 is gated by her
  // fee-1 predecessor.
  EXPECT_EQ(selected[0].from, crypto::address_of(bob.pub));
  EXPECT_EQ(selected[1].from, crypto::address_of(alice.pub));
  EXPECT_EQ(selected[1].nonce, 0u);
  EXPECT_EQ(selected[2].nonce, 1u);
}

TEST(Mempool, SkipsNonceGapsAndDuplicates) {
  WorldState state;
  ChainParams params;
  const auto alice = key_of("alice");
  const auto target = crypto::address_of(key_of("t").pub);
  state.credit(crypto::address_of(alice.pub), 10'000'000);

  Mempool pool;
  const Transaction tx0 = make_transfer(alice, target, 1, 0);
  EXPECT_TRUE(pool.add(tx0));
  EXPECT_FALSE(pool.add(tx0));  // duplicate
  EXPECT_TRUE(pool.add(make_transfer(alice, target, 1, 2)));  // gap at 1

  const auto selected = pool.select(state, params, 10);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].nonce, 0u);
}

TEST(Mempool, RejectsBadSignatureAndHonorsRemoval) {
  WorldState state;
  ChainParams params;
  const auto alice = key_of("alice");
  const auto target = crypto::address_of(key_of("t").pub);
  state.credit(crypto::address_of(alice.pub), 10'000'000);

  Mempool pool;
  Transaction forged = make_transfer(alice, target, 1, 0);
  forged.amount = 2;
  EXPECT_FALSE(pool.add(forged));

  const Transaction good = make_transfer(alice, target, 1, 0);
  EXPECT_TRUE(pool.add(good));
  pool.remove({good});
  EXPECT_TRUE(pool.empty());
}

TEST(Mempool, RespectsMaxAndBudget) {
  WorldState state;
  ChainParams params;
  const auto alice = key_of("alice");
  const auto target = crypto::address_of(key_of("t").pub);
  state.credit(crypto::address_of(alice.pub), 100'000'000);

  Mempool pool;
  for (std::uint64_t n = 0; n < 20; ++n)
    pool.add(make_transfer(alice, target, 1, n));
  EXPECT_EQ(pool.select(state, params, 7).size(), 7u);
}

TEST(Pow, TargetSemantics) {
  Hash256 h{};
  EXPECT_TRUE(meets_target(h, 0));  // zero prefix <= any target
  h.data[0] = 0xff;
  EXPECT_FALSE(meets_target(h, 1'000'000));
  EXPECT_TRUE(meets_target(h, ~0ULL));
}

TEST(Pow, MiningFindsNonceAtEasyTarget) {
  BlockHeader header;
  header.target = ~0ULL / 16;  // 1-in-16 hashes succeed
  const MineResult result = mine(header, 10'000);
  ASSERT_TRUE(result.found);
  EXPECT_TRUE(meets_target(header.id(), header.target));
  EXPECT_GE(result.attempts, 1u);
}

TEST(Pow, MiningRespectsAttemptBudget) {
  BlockHeader header;
  header.target = 1;  // essentially impossible
  const MineResult result = mine(header, 50);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.attempts, 50u);
}

TEST(Pow, MiningIsBackendIndependent) {
  // The lane sweep scans nonces in the same logical order on every
  // backend, so found/nonce/attempts are bit-for-bit identical whether
  // the grind ran scalar or 8 lanes wide (DESIGN.md §15).
  const auto grind = [](crypto::HashBackend backend) {
    crypto::set_hash_backend(backend);
    BlockHeader header;
    header.height = 9;
    header.target = ~0ULL / 64;  // 1-in-64 hashes succeed
    const MineResult result = mine(header, 10'000, 5);
    return std::tuple(result.found, result.nonce, result.attempts,
                      header.nonce, header.id());
  };
  const auto portable = grind(crypto::HashBackend::kPortable);
  const auto simd = grind(crypto::HashBackend::kSimd);
  crypto::set_hash_backend(crypto::HashBackend::kAuto);
  ASSERT_TRUE(std::get<0>(portable));
  EXPECT_EQ(portable, simd);
}

TEST(Pow, ExpectedAttemptsInverseInTarget) {
  EXPECT_GT(expected_attempts(1'000), expected_attempts(1'000'000));
  EXPECT_NEAR(expected_attempts(~0ULL), 1.0, 1e-6);
}

TEST(Pow, RetargetMovesTowardDesired) {
  const std::uint64_t target = 1'000'000;
  // Blocks coming too slowly -> raise target (easier).
  EXPECT_GT(retarget(target, 20.0, 10.0), target);
  // Blocks too fast -> lower target (harder).
  EXPECT_LT(retarget(target, 5.0, 10.0), target);
  // Clamped to 4x per adjustment.
  EXPECT_EQ(retarget(target, 1000.0, 1.0), target * 4);
  EXPECT_EQ(retarget(target, 0.0, 10.0), target);  // degenerate input
}

TEST(Pow, RetargetFeedbackLoopConverges) {
  // Closed loop: a fixed network hash rate mines at whatever the target
  // allows; repeated retargeting must settle near the desired interval
  // regardless of the starting difficulty.
  constexpr double kHashRate = 1e6;   // hashes per second
  constexpr double kDesired = 10.0;   // seconds per block
  for (std::uint64_t target : {~0ULL / 1'000, ~0ULL / 1'000'000'000}) {
    for (int window = 0; window < 40; ++window) {
      const double interval = expected_attempts(target) / kHashRate;
      target = retarget(target, interval, kDesired);
    }
    const double final_interval = expected_attempts(target) / kHashRate;
    EXPECT_NEAR(final_interval, kDesired, kDesired * 0.25)
        << "start target " << target;
  }
}

TEST(Pos, SelectionDeterministicAndStakeWeighted) {
  StakeRegistry registry;
  const auto whale = crypto::address_of(key_of("whale").pub);
  const auto shrimp = crypto::address_of(key_of("shrimp").pub);
  registry.bond(whale, 900);
  registry.bond(shrimp, 100);
  EXPECT_DOUBLE_EQ(registry.win_probability(whale), 0.9);

  const Hash256 seed = crypto::sha256("epoch");
  EXPECT_EQ(registry.select_proposer(seed, 1),
            registry.select_proposer(seed, 1));

  int whale_wins = 0;
  constexpr int kSlots = 2'000;
  for (int h = 0; h < kSlots; ++h)
    if (registry.select_proposer(seed, static_cast<Height>(h)) == whale)
      ++whale_wins;
  EXPECT_NEAR(static_cast<double>(whale_wins) / kSlots, 0.9, 0.03);
}

TEST(Pos, BondUnbondLifecycle) {
  StakeRegistry registry;
  const auto v = crypto::address_of(key_of("v").pub);
  registry.bond(v, 50);
  EXPECT_EQ(registry.stake_of(v), 50u);
  registry.bond(v, 75);  // overwrite
  EXPECT_EQ(registry.stake_of(v), 75u);
  EXPECT_EQ(registry.total_stake(), 75u);
  registry.unbond(v);
  EXPECT_EQ(registry.stake_of(v), 0u);
  EXPECT_THROW(registry.select_proposer(crypto::sha256("s"), 0),
               std::logic_error);
}

}  // namespace
}  // namespace mc::chain
