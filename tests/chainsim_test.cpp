// End-to-end chain simulation tests (PoW and PoS gossip networks).
#include <gtest/gtest.h>

#include "chain/chainsim.hpp"

namespace mc::chain {
namespace {

ChainSimConfig small_config(ConsensusKind consensus) {
  ChainSimConfig config;
  config.node_count = 5;
  config.regions = 2;
  config.client_count = 6;
  config.tx_count = 60;
  config.tx_rate_per_s = 100.0;
  config.params.consensus = consensus;
  config.params.block_interval_s = 0.5;
  config.sim_limit_s = 600.0;
  config.seed = 1234;
  return config;
}

TEST(ChainSim, PowRunCommitsTransactions) {
  const ChainSimReport report = run_chain_sim(small_config(ConsensusKind::ProofOfWork));
  EXPECT_EQ(report.submitted_txs, 60u);
  EXPECT_GE(report.committed_txs, 55u);  // a straggler tail may remain
  EXPECT_GT(report.throughput_tps, 0.0);
  EXPECT_GT(report.avg_commit_latency_s, 0.0);
  EXPECT_GT(report.total_hash_attempts, 0u);  // PoW burned hashes
  EXPECT_GT(report.blocks_on_best_chain, 0u);
}

TEST(ChainSim, PosRunBurnsNoHashes) {
  const ChainSimReport report = run_chain_sim(small_config(ConsensusKind::ProofOfStake));
  EXPECT_GE(report.committed_txs, 55u);
  EXPECT_EQ(report.total_hash_attempts, 0u);  // virtual mining
  EXPECT_GT(report.energy_total_j, 0.0);      // but idle/VM/network remain
}

TEST(ChainSim, ExecutionDuplicationScalesWithNodes) {
  // The §I duplicated-computing claim: per-committed-tx execution count
  // grows ~linearly in the number of nodes.
  auto dup_of = [](std::size_t nodes) {
    ChainSimConfig config = small_config(ConsensusKind::ProofOfStake);
    config.node_count = nodes;
    return run_chain_sim(config).execution_duplication;
  };
  const double dup4 = dup_of(4);
  const double dup8 = dup_of(8);
  EXPECT_GE(dup4, 3.0);  // ~4 minus reorg noise
  EXPECT_GT(dup8, dup4 * 1.5);
}

TEST(ChainSim, GossipTrafficGrowsWithNodes) {
  ChainSimConfig small = small_config(ConsensusKind::ProofOfStake);
  ChainSimConfig large = small;
  large.node_count = 10;
  const auto report_small = run_chain_sim(small);
  const auto report_large = run_chain_sim(large);
  EXPECT_GT(report_large.gossip_messages, report_small.gossip_messages);
  EXPECT_GT(report_large.energy_total_j, report_small.energy_total_j);
}

TEST(ChainSim, DeterministicForSeed) {
  const auto a = run_chain_sim(small_config(ConsensusKind::ProofOfStake));
  const auto b = run_chain_sim(small_config(ConsensusKind::ProofOfStake));
  EXPECT_EQ(a.committed_txs, b.committed_txs);
  EXPECT_DOUBLE_EQ(a.avg_commit_latency_s, b.avg_commit_latency_s);
  EXPECT_EQ(a.gossip_messages, b.gossip_messages);
}

TEST(ChainSim, PbftKindRejected) {
  ChainSimConfig config = small_config(ConsensusKind::Pbft);
  EXPECT_THROW(run_chain_sim(config), std::invalid_argument);
}

}  // namespace
}  // namespace mc::chain
