// Chain export/import and wearable time-series tests.
#include <gtest/gtest.h>

#include <cmath>

#include "chain/codec.hpp"
#include "chain/vm_hook.hpp"
#include "chain/wallet.hpp"
#include "med/generator.hpp"
#include "med/schema.hpp"
#include "med/timeseries.hpp"
#include "vm/assembler.hpp"

namespace mc {
namespace {

using namespace mc::chain;

struct ChainFixture {
  Wallet wallet = Wallet::from_seed("exporter");
  ChainParams params;
  Block genesis;

  ChainFixture() {
    params.consensus = ConsensusKind::Pbft;
    params.premine = {{wallet.address(), 1'000'000'000}};
    genesis = make_genesis("codec-chain", params.pow_target);
  }

  Node fresh(const std::string& who) const {
    return Node(crypto::key_from_seed(who), params, genesis);
  }
};

TEST(ChainCodec, ExportImportRoundTrip) {
  ChainFixture fx;
  Node source = fx.fresh("src");
  for (int b = 0; b < 5; ++b) {
    for (int t = 0; t < 3; ++t)
      source.submit(fx.wallet.transfer(
          crypto::address_of(crypto::key_from_seed("sink").pub), 10));
    const Block block =
        source.propose(1'000 * static_cast<std::uint64_t>(b + 1));
    ASSERT_EQ(source.receive(block), BlockVerdict::Accepted);
  }

  const ChainFile file = export_chain(source);
  EXPECT_EQ(file.blocks.size(), 6u);  // genesis + 5

  const Bytes wire = file.encode();
  const auto decoded = ChainFile::decode(BytesView(wire));
  ASSERT_TRUE(decoded.has_value());

  Node replica = fx.fresh("replica");
  const ImportResult result = import_chain(replica, *decoded);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.height, 5u);
  EXPECT_EQ(result.blocks_applied, 5u);
  EXPECT_EQ(replica.tip(), source.tip());
  EXPECT_EQ(replica.state().digest(), source.state().digest());
}

TEST(ChainCodec, RejectsCorruptInput) {
  EXPECT_FALSE(ChainFile::decode(str_bytes("not a chain")).has_value());
  ChainFixture fx;
  Node source = fx.fresh("src");
  Bytes wire = export_chain(source).encode();
  wire[0] ^= 0xff;  // break the magic
  EXPECT_FALSE(ChainFile::decode(BytesView(wire)).has_value());
  wire[0] ^= 0xff;
  wire.pop_back();  // truncate
  EXPECT_FALSE(ChainFile::decode(BytesView(wire)).has_value());
}

TEST(ChainCodec, ImportGuardsGenesisAndValidity) {
  ChainFixture fx;
  Node source = fx.fresh("src");
  const Block b1 = source.propose(1'000);
  ASSERT_EQ(source.receive(b1), BlockVerdict::Accepted);
  ChainFile file = export_chain(source);

  // Wrong genesis.
  ChainParams other = fx.params;
  Node stranger(crypto::key_from_seed("x"), other,
                make_genesis("different-tag", other.pow_target));
  EXPECT_FALSE(import_chain(stranger, file).ok);

  // Corrupt interior block (height no longer parent+1 -> invalid).
  file.blocks[1].header.height = 9;
  Node replica = fx.fresh("replica");
  const ImportResult bad = import_chain(replica, file);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(replica.height(), 0u);
}

TEST(ChainCodec, ImportReExecutesContracts) {
  // An auditor replaying a chain with Deploy/Call transactions derives
  // the identical contract state (the consortium_audit example, as CI).
  ChainFixture fx;
  vm::ContractStore src_store;
  VmExecutionHook src_hook(src_store);
  Node source(crypto::key_from_seed("src"), fx.params, fx.genesis,
              &src_hook);

  const Transaction deploy = fx.wallet.deploy(
      vm::assemble("PUSH 1\nCALLDATALOAD\nPUSH 3\nSSTORE\nSTOP"));
  ASSERT_TRUE(source.submit(deploy));
  ASSERT_EQ(source.receive(source.propose(1'000)), BlockVerdict::Accepted);
  const auto contract_id = *src_hook.contract_id_of(deploy.id());
  ASSERT_TRUE(source.submit(fx.wallet.call(contract_id, {1, 42})));
  ASSERT_EQ(source.receive(source.propose(2'000)), BlockVerdict::Accepted);

  vm::ContractStore audit_store;
  VmExecutionHook audit_hook(audit_store);
  Node auditor(crypto::key_from_seed("aud"), fx.params, fx.genesis,
               &audit_hook);
  const ImportResult imported =
      import_chain(auditor, export_chain(source));
  ASSERT_TRUE(imported.ok) << imported.error;
  EXPECT_EQ(audit_store.digest(), src_store.digest());
  EXPECT_EQ(audit_store.contract(contract_id)->storage.at(3), 42u);
}

TEST(Wearable, SeriesMatchesBaselinesAndDropout) {
  med::WearableSummary baseline;
  baseline.mean_heart_rate = 68;
  baseline.daily_activity_hours = 1.2;
  baseline.sleep_hours = 7.2;
  med::WearableSeriesConfig config;
  config.days = 360;
  config.wear_dropout = 0.1;
  config.hr_drift_per_90d = 0.0;  // isolate the baseline check
  Rng rng(4);
  const auto series = med::generate_series(baseline, config, rng);
  ASSERT_EQ(series.size(), 360u);

  const auto features = med::extract_features(series);
  EXPECT_NEAR(features.wear_fraction, 0.9, 0.05);
  EXPECT_NEAR(features.mean_heart_rate, 68.0, 1.0);
  EXPECT_NEAR(features.mean_sleep_hours, 7.2, 0.3);
  EXPECT_GT(features.mean_activity_hours, baseline.daily_activity_hours);
  EXPECT_GT(features.activity_variability, 0.0);
}

TEST(Wearable, TrendRecovered) {
  med::WearableSummary baseline;
  baseline.mean_heart_rate = 70;
  med::WearableSeriesConfig config;
  config.days = 360;
  config.wear_dropout = 0.05;
  config.hr_noise = 1.0;
  config.hr_drift_per_90d = 2.0;
  Rng rng(5);
  const auto series = med::generate_series(baseline, config, rng);
  const auto features = med::extract_features(series);
  EXPECT_NEAR(features.hr_trend_per_90d, 2.0, 0.4);
}

TEST(Wearable, HandlesEmptyAndAllDropout) {
  EXPECT_EQ(med::extract_features({}).days_observed, 0u);
  med::WearableSeriesConfig config;
  config.days = 30;
  config.wear_dropout = 1.0;
  Rng rng(6);
  const auto series =
      med::generate_series(med::WearableSummary{}, config, rng);
  const auto features = med::extract_features(series);
  EXPECT_EQ(features.days_observed, 0u);
  EXPECT_DOUBLE_EQ(features.wear_fraction, 0.0);
}

TEST(Wearable, StreamPipelineFeedsTheFederation) {
  // End-to-end: a wearable vendor's daily streams are summarized into
  // features, written into CDF records, and those records survive the
  // site's own schema round-trip (the full ingestion path).
  const auto cohort = med::generate_cohort({.patients = 30, .seed = 9});
  Rng rng(10);
  med::WearableSeriesConfig config;
  config.days = 120;

  for (const auto& patient : cohort) {
    const auto series =
        med::generate_series(patient.wearable, config, rng);
    const auto features = med::extract_features(series);
    med::CommonRecord record = med::to_common(patient);
    med::apply_features(record, features);

    // The extracted means track the generator's baselines.
    EXPECT_NEAR(record.heart_rate, patient.wearable.mean_heart_rate, 4.0);
    // Vendor-schema round trip preserves the stream-derived features.
    const med::RawRow row =
        med::denormalize(record, med::SchemaKind::WearableVendor, "tok");
    const med::PartialRecord back =
        med::normalize(row, med::SchemaKind::WearableVendor);
    EXPECT_NEAR(back.fields.at("heart_rate"), record.heart_rate, 1e-9);
    EXPECT_NEAR(back.fields.at("activity_hours"), record.activity_hours,
                1e-9);
  }
}

TEST(Wearable, FeaturesFlowIntoCommonRecord) {
  med::CommonRecord record;
  med::WearableFeatures features;
  features.mean_heart_rate = 64;
  features.mean_activity_hours = 2.5;
  med::apply_features(record, features);
  EXPECT_DOUBLE_EQ(record.heart_rate, 64.0);
  EXPECT_DOUBLE_EQ(record.activity_hours, 2.5);
}

}  // namespace
}  // namespace mc
