// Unit tests for the common substrate: hex, RNG, serialization, pool.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "common/bytes.hpp"
#include "common/hex.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace mc {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7e};
  const std::string hex = to_hex(BytesView(data));
  EXPECT_EQ(hex, "0001abff7e");
  const auto back = from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Hex, RejectsOddLengthAndBadChars) {
  EXPECT_FALSE(from_hex("abc").has_value());
  EXPECT_FALSE(from_hex("zz").has_value());
  EXPECT_TRUE(from_hex("").has_value());
}

// Characters adjacent to the accepted ASCII ranges must be rejected —
// an off-by-one in the nibble table would admit them silently.
TEST(Hex, RejectsRangeBoundaryNeighbours) {
  for (const char* bad : {"/0", ":0", "@0", "G0", "`0", "g0",
                          "0/", "0:", "0@", "0G", "0`", "0g"}) {
    EXPECT_FALSE(from_hex(bad).has_value()) << bad;
  }
  // Whitespace and embedded NUL are data errors, not separators.
  EXPECT_FALSE(from_hex(" 0").has_value());
  EXPECT_FALSE(from_hex("0 ").has_value());
  EXPECT_FALSE(from_hex(std::string_view("\0" "0", 2)).has_value());
  // High-bit bytes (e.g. UTF-8 continuation bytes) must not map.
  EXPECT_FALSE(from_hex("\xc3\xa9").has_value());
}

TEST(Hex, AllByteValuesRoundTrip) {
  Bytes all(256);
  for (std::size_t i = 0; i < all.size(); ++i)
    all[i] = static_cast<std::uint8_t>(i);
  const std::string hex = to_hex(BytesView(all));
  ASSERT_EQ(hex.size(), 512u);
  const auto back = from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, all);
}

TEST(Hex, MixedCaseDecodesToSameBytes) {
  const auto lower = from_hex("deadbeef");
  const auto mixed = from_hex("DeAdBeEf");
  ASSERT_TRUE(lower.has_value());
  ASSERT_TRUE(mixed.has_value());
  EXPECT_EQ(*lower, *mixed);
}

TEST(Hex, UppercaseAccepted) {
  const auto decoded = from_hex("DEADBEEF");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(to_hex(BytesView(*decoded)), "deadbeef");
}

TEST(Fnv, DistinctInputsDistinctHashes) {
  EXPECT_NE(fnv1a("alpha"), fnv1a("beta"));
  EXPECT_EQ(fnv1a("alpha"), fnv1a("alpha"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i)
    if (a2.next() != c.next()) differs = true;
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1'000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit over 1000 draws
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 50'000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(0.25);
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Rng, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  constexpr int kN = 20'000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  const auto sample = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<std::size_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (const auto i : uniq) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleClampsOverdraw) {
  Rng rng(21);
  EXPECT_EQ(rng.sample_without_replacement(5, 50).size(), 5u);
}

TEST(Rng, ForkIndependentStreams) {
  Rng base(3);
  Rng fork_a = base.fork("a");
  Rng fork_b = base.fork("b");
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (fork_a.next() == fork_b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Serial, IntegerRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.14159);
  ByteReader r(BytesView(w.data()));
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.done());
}

TEST(Serial, VarintBoundaries) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, ~0ULL}) {
    ByteWriter w;
    w.varint(v);
    ByteReader r(BytesView(w.data()));
    EXPECT_EQ(r.varint(), v);
  }
}

TEST(Serial, VarintRejectsOverlongEncodings) {
  // 0x80 0x00 decodes to the same value as plain 0x00 under a permissive
  // reader; canonical decoding must reject the padded form so every value
  // has exactly one wire representation (one content id).
  for (const Bytes evil :
       {Bytes{0x80, 0x00}, Bytes{0xff, 0x00}, Bytes{0x81, 0x80, 0x00}}) {
    ByteReader r{BytesView(evil)};
    EXPECT_THROW(r.varint(), SerialError) << "overlong varint accepted";
  }
  // A trailing zero continuation *payload* byte is only invalid as the
  // final byte; 0x80 0x01 (value 128) is canonical and must pass.
  Bytes ok{0x80, 0x01};
  ByteReader r{BytesView(ok)};
  EXPECT_EQ(r.varint(), 128u);
}

TEST(Serial, VarintRejectsOverflow) {
  // 10 continuation bytes push past 64 bits.
  Bytes evil(10, 0xff);
  evil.push_back(0x01);
  ByteReader r{BytesView(evil)};
  EXPECT_THROW(r.varint(), SerialError);
  // 2^64 - 1 is the largest encodable value: 9 x 0xff then 0x01.
  Bytes max(9, 0xff);
  max.push_back(0x01);
  ByteReader ok{BytesView(max)};
  EXPECT_EQ(ok.varint(), ~0ULL);
  // Same length but a payload bit above 2^64: rejected.
  Bytes over(9, 0xff);
  over.push_back(0x02);
  ByteReader bad{BytesView(over)};
  EXPECT_THROW(bad.varint(), SerialError);
}

TEST(Serial, HashAndSizeWritersMirrorByteWriter) {
  // Write the same mixed sequence through all four writers: the streamed
  // digest, the counted size and the FNV fingerprint must all agree with
  // the materialized buffer.
  const auto script = [](auto& w) {
    w.u8(7);
    w.u16(0xbeef);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefULL);
    w.i64(-42);
    w.f64(2.71828);
    w.varint(0);
    w.varint(300);
    w.varint(~0ULL);
    w.bytes(Bytes{9, 8, 7});
    w.str("writers agree");
    w.hash(Hash256{});
  };
  ByteWriter bw;
  script(bw);
  HashWriter hw;
  script(hw);
  SizeWriter sw;
  script(sw);
  FnvWriter fw;
  script(fw);
  EXPECT_EQ(hw.digest(), crypto::sha256(BytesView(bw.data())));
  EXPECT_EQ(sw.size(), bw.size());
  EXPECT_EQ(fw.value(), fnv1a(BytesView(bw.data())));
}

TEST(Serial, BytesAndStrings) {
  ByteWriter w;
  w.str("hello medchain");
  w.bytes(Bytes{1, 2, 3});
  ByteReader r(BytesView(w.data()));
  EXPECT_EQ(r.str(), "hello medchain");
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
}

TEST(Serial, TruncationThrows) {
  ByteWriter w;
  w.u32(5);
  ByteReader r(BytesView(w.data()));
  r.u16();
  EXPECT_THROW(r.u32(), SerialError);
}

TEST(Serial, OversizedLengthThrows) {
  Bytes evil;
  evil.push_back(0xff);  // varint says a huge length follows
  evil.push_back(0xff);
  evil.push_back(0x03);
  ByteReader r{BytesView(evil)};
  EXPECT_THROW(r.bytes(), SerialError);
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Table, AlignsAndPrints) {
  Table table({"name", "value"});
  table.row().cell("alpha").cell(3.14159, 3);
  table.row().cell("b").cell(std::uint64_t{42});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.142"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(Hash256, PrefixAndZero) {
  Hash256 zero{};
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.prefix_u64(), 0u);
  Hash256 h{};
  h.data[0] = 0x01;
  EXPECT_FALSE(h.is_zero());
  EXPECT_EQ(h.prefix_u64(), 0x0100000000000000ULL);
}

}  // namespace
}  // namespace mc
