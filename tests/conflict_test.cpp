// Conflict-footprint edge cases and the dependency-DAG contract backing
// the parallel execution pipeline (DESIGN.md §13): exactly which
// intersections conflict, how unbounded (⊤) footprints behave, and the
// property that block order is always a valid topological order of the
// DAG the scheduler runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "chain/conflict.hpp"
#include "chain/execution/dag.hpp"
#include "common/rng.hpp"

namespace {

using mc::Rng;
using mc::chain::FootprintCell;
using mc::chain::TxFootprint;
using mc::chain::footprints_conflict;
using mc::chain::exec::TxDag;
using mc::chain::exec::build_tx_dag;
namespace fp = mc::chain::fp_domain;

FootprintCell balance_cell(mc::vm::Word who) {
  return {fp::kBalance, who, 0};
}

FootprintCell contract_cell(mc::vm::Word id, mc::vm::Word key) {
  return {fp::kContract, id, key};
}

TxFootprint reads_of(std::initializer_list<FootprintCell> cells) {
  TxFootprint f;
  f.reads.insert(cells.begin(), cells.end());
  return f;
}

TxFootprint writes_of(std::initializer_list<FootprintCell> cells) {
  TxFootprint f;
  f.writes.insert(cells.begin(), cells.end());
  return f;
}

// --- pairwise conflict semantics -------------------------------------------

TEST(Footprints, WriteWriteOnSameCellConflicts) {
  const TxFootprint a = writes_of({balance_cell(1)});
  const TxFootprint b = writes_of({balance_cell(1)});
  EXPECT_TRUE(footprints_conflict(a, b));
}

TEST(Footprints, WriteReadEitherDirectionConflicts) {
  const TxFootprint writer = writes_of({contract_cell(9, 7)});
  const TxFootprint reader = reads_of({contract_cell(9, 7)});
  EXPECT_TRUE(footprints_conflict(writer, reader));
  EXPECT_TRUE(footprints_conflict(reader, writer));  // R∩W symmetric
}

TEST(Footprints, ReadReadCommutes) {
  // Pure readers of the same cell never conflict — this is what lets a
  // whole wave of lookups against one contract run concurrently.
  const TxFootprint a = reads_of({contract_cell(9, 7), balance_cell(1)});
  const TxFootprint b = reads_of({contract_cell(9, 7), balance_cell(2)});
  EXPECT_FALSE(footprints_conflict(a, b));
}

TEST(Footprints, DisjointCellsCommute) {
  const TxFootprint a = writes_of({balance_cell(1), contract_cell(9, 7)});
  const TxFootprint b = writes_of({balance_cell(2), contract_cell(9, 8)});
  EXPECT_FALSE(footprints_conflict(a, b));
}

TEST(Footprints, DomainsDoNotAlias) {
  // Same (a, b) payload under different domains must stay distinct:
  // balance of address 7 is not storage key 7.
  const TxFootprint a = writes_of({{fp::kBalance, 7, 0}});
  const TxFootprint b = writes_of({{fp::kContract, 7, 0}});
  EXPECT_FALSE(footprints_conflict(a, b));
}

TEST(Footprints, UnboundedConflictsWithEverything) {
  TxFootprint top;
  top.unbounded = true;
  const TxFootprint empty;  // no reads, no writes
  const TxFootprint reader = reads_of({contract_cell(1, 1)});
  // ⊤ conflicts even with a footprint it shares no cell with — including
  // the empty one — and regardless of argument order.
  EXPECT_TRUE(footprints_conflict(top, empty));
  EXPECT_TRUE(footprints_conflict(empty, top));
  EXPECT_TRUE(footprints_conflict(top, reader));
  TxFootprint top2;
  top2.unbounded = true;
  EXPECT_TRUE(footprints_conflict(top, top2));
}

TEST(Footprints, SelfConflictIsNotAnEdge) {
  // A writer trivially "conflicts" with itself pairwise, but the DAG is
  // over distinct indices: a single tx (or several copies of the same
  // footprint at different indices) must produce forward edges only,
  // never self-loops.
  TxFootprint w = writes_of({balance_cell(5)});
  EXPECT_TRUE(footprints_conflict(w, w));

  const TxDag solo = build_tx_dag({w});
  EXPECT_EQ(solo.size(), 1u);
  EXPECT_EQ(solo.edges, 0u);
  EXPECT_TRUE(solo.preds[0].empty());
  EXPECT_TRUE(solo.succs[0].empty());

  const TxDag chain = build_tx_dag({w, w, w});
  for (std::size_t j = 0; j < chain.size(); ++j)
    for (const std::uint32_t p : chain.preds[j])
      EXPECT_LT(p, j) << "self or backward edge at " << j;
}

// --- DAG shape --------------------------------------------------------------

TEST(TxDagShape, SerialChainAndParallelBlock) {
  TxFootprint w = writes_of({balance_cell(1)});
  const TxDag serial = build_tx_dag({w, w, w, w});
  EXPECT_EQ(serial.critical_path, 4u);
  EXPECT_EQ(serial.edges, 6u);  // all-pairs on one cell
  EXPECT_NEAR(serial.parallelism(), 1.0, 1e-9);

  std::vector<TxFootprint> disjoint;
  for (mc::vm::Word i = 0; i < 4; ++i)
    disjoint.push_back(writes_of({balance_cell(100 + i)}));
  const TxDag wide = build_tx_dag(disjoint);
  EXPECT_EQ(wide.critical_path, 1u);
  EXPECT_EQ(wide.edges, 0u);
  EXPECT_NEAR(wide.parallelism(), 4.0, 1e-9);
}

TEST(TxDagShape, LevelsFollowLongestPath) {
  // 0 -> 1 -> 3, 2 independent: levels 0,1,0,2.
  const TxFootprint a = writes_of({balance_cell(1)});
  const TxFootprint b = writes_of({balance_cell(1), balance_cell(2)});
  const TxFootprint c = writes_of({balance_cell(9)});
  const TxFootprint d = writes_of({balance_cell(2)});
  const TxDag dag = build_tx_dag({a, b, c, d});
  EXPECT_EQ(dag.levels, (std::vector<std::uint32_t>{0, 1, 0, 2}));
  EXPECT_EQ(dag.critical_path, 3u);
}

// --- topological-order property --------------------------------------------

TEST(TxDagOrder, RejectsNonPermutations) {
  TxFootprint w = writes_of({balance_cell(1)});
  const TxDag dag = build_tx_dag({w, w, w});
  EXPECT_FALSE(dag.is_topological_order({0, 1}));        // too short
  EXPECT_FALSE(dag.is_topological_order({0, 1, 1}));     // duplicate
  EXPECT_FALSE(dag.is_topological_order({0, 1, 3}));     // out of range
  EXPECT_FALSE(dag.is_topological_order({2, 1, 0}));     // violates edges
  EXPECT_TRUE(dag.is_topological_order({0, 1, 2}));
}

// Property: for ANY footprint mix, the block's own order 0..n-1 is a
// valid topological order of the DAG — the exact invariant that lets the
// parallel scheduler fall back to index-order commit without deadlock.
TEST(TxDagOrder, SequentialOrderAlwaysTopological) {
  Rng rng(0xc0f1dULL);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.uniform(24);
    std::vector<TxFootprint> fps;
    for (std::size_t i = 0; i < n; ++i) {
      TxFootprint f;
      // Small cell universe so collisions (and thus edges) are common.
      const std::size_t cells = rng.uniform(4);
      for (std::size_t c = 0; c < cells; ++c) {
        const FootprintCell cell = contract_cell(rng.uniform(3), rng.uniform(5));
        if (rng.bernoulli(0.5))
          f.writes.insert(cell);
        else
          f.reads.insert(cell);
      }
      f.unbounded = rng.bernoulli(0.1);
      fps.push_back(std::move(f));
    }
    const TxDag dag = build_tx_dag(fps);

    std::vector<std::uint32_t> sequential(n);
    std::iota(sequential.begin(), sequential.end(), 0);
    ASSERT_TRUE(dag.is_topological_order(sequential))
        << "block order rejected on trial " << trial << " (n=" << n << ")";

    // Cross-check edge soundness: every recorded edge joins a genuinely
    // conflicting pair, and every conflicting pair is an edge.
    std::size_t conflicting = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (footprints_conflict(fps[i], fps[j])) ++conflicting;
    EXPECT_EQ(dag.edges, conflicting);

    // A reversal is only topological when the DAG has no edges at all.
    if (n > 1 && dag.edges > 0) {
      std::vector<std::uint32_t> reversed(sequential.rbegin(),
                                          sequential.rend());
      EXPECT_FALSE(dag.is_topological_order(reversed));
    }
  }
}

}  // namespace
