// Consortium tests: replicated contract execution through real blocks.
#include <gtest/gtest.h>

#include "contracts/abi.hpp"
#include "contracts/analytics.hpp"
#include "contracts/policy.hpp"
#include "contracts/trial.hpp"
#include "core/consortium.hpp"
#include "vm/assembler.hpp"

namespace mc::core {
namespace {

TEST(Consortium, StartsInConsensus) {
  Consortium consortium({.members = 4});
  EXPECT_EQ(consortium.size(), 4u);
  EXPECT_EQ(consortium.height(), 0u);
  EXPECT_TRUE(consortium.in_consensus());
}

TEST(Consortium, CommitsTransfersOnAllMembers) {
  Consortium consortium({.members = 4});
  const auto recipient = crypto::key_from_seed("recipient");
  const chain::Transaction tx = chain::make_transfer(
      consortium.admin(), crypto::address_of(recipient.pub), 12'345,
      consortium.nonce_of(consortium.admin()));
  const CommitResult result = consortium.commit({tx});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.height, 1u);
  EXPECT_TRUE(consortium.in_consensus());
  for (std::size_t i = 0; i < consortium.size(); ++i)
    EXPECT_EQ(consortium.member(i).state().balance(
                  crypto::address_of(recipient.pub)),
              12'345u);
  // 1 tx executed by 4 members = 4 executions (the duplication).
  EXPECT_EQ(consortium.total_executions(), 4u);
}

TEST(Consortium, DeploysAndCallsPolicyContractEverywhere) {
  Consortium consortium({.members = 5});
  const auto deployed = consortium.deploy_contract(
      consortium.admin(), contracts::PolicyContract::bytecode());
  ASSERT_TRUE(deployed.has_value());

  const vm::Word admin_word =
      fnv1a(BytesView(crypto::address_of(consortium.admin().pub).data));
  ASSERT_TRUE(consortium
                  .call_contract(consortium.admin(), *deployed,
                                 contracts::encode_call(1, {0xd5}))
                  .ok);
  ASSERT_TRUE(consortium
                  .call_contract(
                      consortium.admin(), *deployed,
                      contracts::encode_call(
                          2, {0xd5, 0x20, contracts::kPermCompute}))
                  .ok);
  EXPECT_TRUE(consortium.in_consensus());

  // Query the grant on every member's replica of the contract.
  for (std::size_t i = 0; i < consortium.size(); ++i) {
    contracts::PolicyContract policy(consortium.store(i), *deployed);
    EXPECT_EQ(policy.owner_of(0xd5), admin_word);
    EXPECT_TRUE(policy.check(0xd5, 0x20, contracts::kPermCompute));
  }
}

TEST(Consortium, RejectsBlockWithTrappingCallAtomically) {
  Consortium consortium({.members = 3});
  const auto deployed = consortium.deploy_contract(
      consortium.admin(), contracts::PolicyContract::bytecode());
  ASSERT_TRUE(deployed.has_value());
  const chain::Height before = consortium.height();

  // Selector 99 reverts in the policy contract.
  const CommitResult result = consortium.call_contract(
      consortium.admin(), *deployed, contracts::encode_call(99, {}));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(consortium.height(), before);
  EXPECT_TRUE(consortium.in_consensus());
}

TEST(Consortium, ProposerRotationStillConverges) {
  Consortium consortium({.members = 4});
  // Ten blocks, each proposed by the next member in rotation.
  for (int i = 0; i < 10; ++i) {
    const auto target = crypto::key_from_seed("t" + std::to_string(i));
    const chain::Transaction tx = chain::make_transfer(
        consortium.admin(), crypto::address_of(target.pub), 10,
        consortium.nonce_of(consortium.admin()));
    ASSERT_TRUE(consortium.commit({tx}).ok);
  }
  EXPECT_EQ(consortium.height(), 10u);
  EXPECT_TRUE(consortium.in_consensus());
}

TEST(Consortium, DuplicationScalesWithMembership) {
  auto executions_for = [](std::size_t members) {
    Consortium consortium({.members = members});
    for (int i = 0; i < 5; ++i) {
      const auto target = crypto::key_from_seed("t" + std::to_string(i));
      const chain::Transaction tx = chain::make_transfer(
          consortium.admin(), crypto::address_of(target.pub), 1,
          consortium.nonce_of(consortium.admin()));
      consortium.commit({tx});
    }
    return consortium.total_executions();
  };
  EXPECT_EQ(executions_for(2), 10u);   // 5 txs x 2 members
  EXPECT_EQ(executions_for(8), 40u);   // 5 txs x 8 members
}

TEST(Consortium, AnalyticsLifecycleFullyOnChain) {
  // The flagship integration: policy + analytics contracts both live on
  // the replicated chain; the analytics request's permission check runs
  // via SXLOAD against each member's replica of the policy contract —
  // no off-chain oracle in the consensus path, all replicas agree.
  Consortium consortium({.members = 4});
  const auto policy_id = consortium.deploy_contract(
      consortium.admin(), contracts::PolicyContract::bytecode());
  const auto analytics_id = consortium.deploy_contract(
      consortium.admin(), contracts::AnalyticsContract::bytecode());
  ASSERT_TRUE(policy_id.has_value() && analytics_id.has_value());

  const vm::Word admin_word =
      fnv1a(BytesView(crypto::address_of(consortium.admin().pub).data));
  constexpr vm::Word kBridge = 0xb1;
  constexpr vm::Word kDataset = 0xd5;

  // init(bridge, policy) + register dataset + grant admin compute.
  ASSERT_TRUE(consortium
                  .call_contract(consortium.admin(), *analytics_id,
                                 contracts::encode_call(
                                     7, {kBridge, *policy_id}))
                  .ok);
  ASSERT_TRUE(consortium
                  .call_contract(consortium.admin(), *policy_id,
                                 contracts::encode_call(1, {kDataset}))
                  .ok);
  ASSERT_TRUE(consortium
                  .call_contract(
                      consortium.admin(), *policy_id,
                      contracts::encode_call(
                          2, {kDataset, admin_word, contracts::kPermCompute}))
                  .ok);

  // The permitted request commits on-chain across all replicas.
  ASSERT_TRUE(consortium
                  .call_contract(consortium.admin(), *analytics_id,
                                 contracts::encode_call(
                                     1, {0x9001, 0x7, kDataset, 0xfeed}))
                  .ok);
  EXPECT_TRUE(consortium.in_consensus());
  for (std::size_t i = 0; i < consortium.size(); ++i) {
    contracts::AnalyticsContract replica(consortium.store(i), *analytics_id);
    EXPECT_EQ(replica.status(0x9001), contracts::RequestStatus::Pending);
    const auto request = replica.load(0x9001);
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(request->dataset, kDataset);
  }

  // Revoke, then a new request is rejected — the block never commits.
  ASSERT_TRUE(consortium
                  .call_contract(consortium.admin(), *policy_id,
                                 contracts::encode_call(
                                     3, {kDataset, admin_word}))
                  .ok);
  const chain::Height before = consortium.height();
  EXPECT_FALSE(consortium
                   .call_contract(consortium.admin(), *analytics_id,
                                  contracts::encode_call(
                                      1, {0x9002, 0x7, kDataset, 0xfeed}))
                   .ok);
  EXPECT_EQ(consortium.height(), before);
  EXPECT_TRUE(consortium.in_consensus());
}

TEST(Consortium, TrialContractWorkflowOnChain) {
  Consortium consortium({.members = 4});
  const auto trial_id = consortium.deploy_contract(
      consortium.admin(), contracts::TrialContract::bytecode());
  ASSERT_TRUE(trial_id.has_value());

  // register(trial=0x7, digest=0xfe, primary=501); enroll two patients;
  // report the committed outcome.
  ASSERT_TRUE(consortium
                  .call_contract(consortium.admin(), *trial_id,
                                 contracts::encode_call(1, {0x7, 0xfe, 501}))
                  .ok);
  ASSERT_TRUE(consortium
                  .call_contract(consortium.admin(), *trial_id,
                                 contracts::encode_call(2, {0x7, 0xaa}))
                  .ok);
  ASSERT_TRUE(consortium
                  .call_contract(consortium.admin(), *trial_id,
                                 contracts::encode_call(2, {0x7, 0xbb}))
                  .ok);
  ASSERT_TRUE(consortium
                  .call_contract(consortium.admin(), *trial_id,
                                 contracts::encode_call(3, {0x7, 501, 0x1}))
                  .ok);

  for (std::size_t i = 0; i < consortium.size(); ++i) {
    contracts::TrialContract trial(consortium.store(i), *trial_id);
    EXPECT_EQ(trial.enrollment(0x7), 2u);
    EXPECT_TRUE(trial.verify_outcome(0x7));
  }
}

}  // namespace
}  // namespace mc::core
