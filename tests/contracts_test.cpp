// On-chain contract suite tests: policy, registry, trial, analytics.
#include <gtest/gtest.h>

#include "contracts/analytics.hpp"
#include "contracts/policy.hpp"
#include "contracts/registry.hpp"
#include "contracts/trial.hpp"

namespace mc::contracts {
namespace {

constexpr Word kHospital = 0x1001;
constexpr Word kResearcher = 0x2002;
constexpr Word kMallory = 0x3003;
constexpr Word kDataset = 0xd5;
constexpr Word kBridge = 0xb1d;

class PolicyTest : public ::testing::Test {
 protected:
  vm::ContractStore store_;
  PolicyContract policy_{store_, /*deployer=*/1, /*height=*/1};
};

TEST_F(PolicyTest, RegisterGrantCheckRevoke) {
  EXPECT_TRUE(policy_.register_dataset(kHospital, kDataset));
  EXPECT_EQ(policy_.owner_of(kDataset), kHospital);

  EXPECT_FALSE(policy_.check(kDataset, kResearcher, kPermRead));
  EXPECT_TRUE(policy_.grant(kHospital, kDataset, kResearcher,
                            kPermRead | kPermCompute));
  EXPECT_TRUE(policy_.check(kDataset, kResearcher, kPermRead));
  EXPECT_TRUE(policy_.check(kDataset, kResearcher, kPermCompute));
  EXPECT_TRUE(
      policy_.check(kDataset, kResearcher, kPermRead | kPermCompute));
  EXPECT_FALSE(policy_.check(kDataset, kResearcher, kPermShare));

  EXPECT_TRUE(policy_.revoke(kHospital, kDataset, kResearcher));
  EXPECT_FALSE(policy_.check(kDataset, kResearcher, kPermRead));
}

TEST_F(PolicyTest, DoubleRegistrationReverts) {
  EXPECT_TRUE(policy_.register_dataset(kHospital, kDataset));
  EXPECT_FALSE(policy_.register_dataset(kMallory, kDataset));
  EXPECT_EQ(policy_.owner_of(kDataset), kHospital);  // unchanged
}

TEST_F(PolicyTest, OnlyOwnerMayGrantOrRevoke) {
  ASSERT_TRUE(policy_.register_dataset(kHospital, kDataset));
  EXPECT_FALSE(policy_.grant(kMallory, kDataset, kMallory, kPermRead));
  EXPECT_FALSE(policy_.check(kDataset, kMallory, kPermRead));

  ASSERT_TRUE(policy_.grant(kHospital, kDataset, kResearcher, kPermRead));
  EXPECT_FALSE(policy_.revoke(kMallory, kDataset, kResearcher));
  EXPECT_TRUE(policy_.check(kDataset, kResearcher, kPermRead));
}

TEST_F(PolicyTest, PermissionsArePerDatasetAndGrantee) {
  ASSERT_TRUE(policy_.register_dataset(kHospital, kDataset));
  ASSERT_TRUE(policy_.register_dataset(kHospital, kDataset + 1));
  ASSERT_TRUE(policy_.grant(kHospital, kDataset, kResearcher, kPermRead));
  EXPECT_FALSE(policy_.check(kDataset + 1, kResearcher, kPermRead));
  EXPECT_FALSE(policy_.check(kDataset, kMallory, kPermRead));
}

TEST_F(PolicyTest, EmitsEventsForMonitor) {
  ASSERT_TRUE(policy_.register_dataset(kHospital, kDataset));
  ASSERT_TRUE(policy_.grant(kHospital, kDataset, kResearcher, kPermRead));
  const auto& events = store_.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].topic, kEvDatasetOwnerRegistered);
  EXPECT_EQ(events[0].args, (std::vector<Word>{kDataset, kHospital}));
  EXPECT_EQ(events[1].topic, kEvAccessGranted);
  EXPECT_EQ(events[1].args,
            (std::vector<Word>{kDataset, kResearcher, kPermRead}));
}

TEST_F(PolicyTest, CallsAreLightweight) {
  // The paper's design goal: the policy control point is cheap. A grant
  // costs a few hundred gas vs the 10M-gas block budget.
  ASSERT_TRUE(policy_.register_dataset(kHospital, kDataset));
  ASSERT_TRUE(policy_.grant(kHospital, kDataset, kResearcher, kPermRead));
  EXPECT_LT(policy_.last_gas(), 1'000u);
}

class RegistryTest : public ::testing::Test {
 protected:
  vm::ContractStore store_;
  RegistryContract registry_{store_, 1, 1};
};

TEST_F(RegistryTest, DatasetLifecycle) {
  EXPECT_EQ(registry_.digest_of(kDataset), 0u);
  EXPECT_TRUE(
      registry_.register_dataset(kHospital, kDataset, 0xabc, 500, 3));
  EXPECT_EQ(registry_.digest_of(kDataset), 0xabcu);

  const auto meta = registry_.meta_of(kDataset);
  ASSERT_TRUE(meta.has_value());
  EXPECT_EQ(meta->owner, kHospital);
  EXPECT_EQ(meta->digest, 0xabcu);
  EXPECT_EQ(meta->record_count, 500u);
  EXPECT_EQ(meta->schema_id, 3u);

  EXPECT_TRUE(registry_.update_digest(kHospital, kDataset, 0xdef, 600));
  EXPECT_EQ(registry_.digest_of(kDataset), 0xdefu);
  EXPECT_EQ(registry_.meta_of(kDataset)->record_count, 600u);
}

TEST_F(RegistryTest, OwnershipEnforced) {
  ASSERT_TRUE(registry_.register_dataset(kHospital, kDataset, 1, 1, 1));
  EXPECT_FALSE(registry_.register_dataset(kMallory, kDataset, 2, 2, 2));
  EXPECT_FALSE(registry_.update_digest(kMallory, kDataset, 0xbad, 1));
  EXPECT_EQ(registry_.digest_of(kDataset), 1u);
}

TEST_F(RegistryTest, UnregisteredMetaIsNull) {
  EXPECT_FALSE(registry_.meta_of(999).has_value());
}

TEST_F(RegistryTest, ToolRegistration) {
  constexpr Word kTool = 0x700;
  EXPECT_EQ(registry_.tool_digest(kTool), 0u);
  EXPECT_TRUE(registry_.register_tool(kResearcher, kTool, 0x1234));
  EXPECT_EQ(registry_.tool_digest(kTool), 0x1234u);
  EXPECT_FALSE(registry_.register_tool(kMallory, kTool, 0x9999));
  EXPECT_EQ(registry_.tool_digest(kTool), 0x1234u);
}

class TrialTest : public ::testing::Test {
 protected:
  vm::ContractStore store_;
  TrialContract trial_{store_, 1, 1};
  static constexpr Word kTrial = 0xc71a;
  static constexpr Word kSponsor = 0x5b0;
  static constexpr Word kOutcome = 501;
};

TEST_F(TrialTest, HonestTrialVerifies) {
  EXPECT_TRUE(trial_.register_trial(kSponsor, kTrial, 0xfeed, kOutcome));
  EXPECT_EQ(trial_.protocol_digest(kTrial), 0xfeedu);
  EXPECT_FALSE(trial_.verify_outcome(kTrial));  // not yet reported
  EXPECT_TRUE(trial_.report(kSponsor, kTrial, kOutcome, 0x1e5));
  EXPECT_TRUE(trial_.verify_outcome(kTrial));
}

TEST_F(TrialTest, OutcomeSwitchingDetected) {
  ASSERT_TRUE(trial_.register_trial(kSponsor, kTrial, 0xfeed, kOutcome));
  ASSERT_TRUE(trial_.report(kSponsor, kTrial, kOutcome + 7, 0x1));
  EXPECT_FALSE(trial_.verify_outcome(kTrial));  // switched!
}

TEST_F(TrialTest, EnrollmentCountsAndDeduplicates) {
  ASSERT_TRUE(trial_.register_trial(kSponsor, kTrial, 1, kOutcome));
  EXPECT_EQ(trial_.enrollment(kTrial), 0u);
  EXPECT_TRUE(trial_.enroll(kSponsor, kTrial, 0xaa));
  EXPECT_TRUE(trial_.enroll(kSponsor, kTrial, 0xbb));
  EXPECT_FALSE(trial_.enroll(kSponsor, kTrial, 0xaa));  // duplicate
  EXPECT_EQ(trial_.enrollment(kTrial), 2u);
}

TEST_F(TrialTest, GuardsAgainstUnregisteredAndImpostors) {
  EXPECT_FALSE(trial_.enroll(kSponsor, kTrial, 0xaa));  // no trial yet
  ASSERT_TRUE(trial_.register_trial(kSponsor, kTrial, 1, kOutcome));
  EXPECT_FALSE(trial_.register_trial(kMallory, kTrial, 2, 2));
  EXPECT_FALSE(trial_.report(kMallory, kTrial, kOutcome, 0x1));
  EXPECT_FALSE(trial_.verify_outcome(kTrial));
  EXPECT_FALSE(trial_.verify_outcome(0xdead));  // unknown trial -> 0
}

class AnalyticsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(analytics_.init(1, kBridge, policy_.id()));
    ASSERT_TRUE(policy_.register_dataset(kHospital, kDataset));
  }

  void grant_researcher() {
    ASSERT_TRUE(
        policy_.grant(kHospital, kDataset, kResearcher, kPermCompute));
  }

  vm::ContractStore store_;
  PolicyContract policy_{store_, 1, 1};
  AnalyticsContract analytics_{store_, 1, 1};
  static constexpr Word kRequest = 0x42;
  static constexpr Word kTool = 0x7;
};

TEST_F(AnalyticsTest, InitOnlyOnce) {
  EXPECT_FALSE(analytics_.init(kMallory, kMallory, kMallory));
}

TEST_F(AnalyticsTest, PermittedRequestLifecycle) {
  grant_researcher();
  EXPECT_EQ(analytics_.status(kRequest), RequestStatus::None);
  EXPECT_TRUE(
      analytics_.request(kResearcher, kRequest, kTool, kDataset, 0xdead));
  EXPECT_EQ(analytics_.status(kRequest), RequestStatus::Pending);

  const auto loaded = analytics_.load(kRequest);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->requester, kResearcher);
  EXPECT_EQ(loaded->tool, kTool);
  EXPECT_EQ(loaded->dataset, kDataset);
  EXPECT_EQ(loaded->param_digest, 0xdeadu);

  EXPECT_TRUE(analytics_.complete(kBridge, kRequest, 0xbeef));
  EXPECT_EQ(analytics_.status(kRequest), RequestStatus::Done);
  EXPECT_EQ(analytics_.result(kRequest), 0xbeefu);
}

TEST_F(AnalyticsTest, DeniedWithoutOnChainGrant) {
  // No grant in the policy contract: the SXLOAD permission check fails
  // and the whole request reverts, leaving no trace.
  EXPECT_FALSE(
      analytics_.request(kResearcher, kRequest, kTool, kDataset, 0x1));
  EXPECT_EQ(analytics_.status(kRequest), RequestStatus::None);
  EXPECT_FALSE(analytics_.load(kRequest).has_value());  // reverted fields
}

TEST_F(AnalyticsTest, ReadPermissionIsNotEnough) {
  ASSERT_TRUE(policy_.grant(kHospital, kDataset, kResearcher, kPermRead));
  EXPECT_FALSE(
      analytics_.request(kResearcher, kRequest, kTool, kDataset, 0x1));
}

TEST_F(AnalyticsTest, RevocationTakesImmediateEffect) {
  grant_researcher();
  ASSERT_TRUE(
      analytics_.request(kResearcher, kRequest, kTool, kDataset, 0x1));
  ASSERT_TRUE(policy_.revoke(kHospital, kDataset, kResearcher));
  EXPECT_FALSE(
      analytics_.request(kResearcher, kRequest + 1, kTool, kDataset, 0x1));
}

TEST_F(AnalyticsTest, DuplicateRequestIdReverts) {
  grant_researcher();
  ASSERT_TRUE(policy_.grant(kHospital, kDataset, kMallory, kPermCompute));
  ASSERT_TRUE(
      analytics_.request(kResearcher, kRequest, kTool, kDataset, 0x1));
  EXPECT_FALSE(analytics_.request(kMallory, kRequest, kTool, kDataset, 0x2));
}

TEST_F(AnalyticsTest, OnlyBridgeCompletes) {
  grant_researcher();
  ASSERT_TRUE(
      analytics_.request(kResearcher, kRequest, kTool, kDataset, 0x1));
  EXPECT_FALSE(analytics_.complete(kMallory, kRequest, 0x666));
  EXPECT_EQ(analytics_.status(kRequest), RequestStatus::Pending);
  EXPECT_TRUE(analytics_.complete(kBridge, kRequest, 0x1));
  // Completing twice fails: no longer pending.
  EXPECT_FALSE(analytics_.complete(kBridge, kRequest, 0x2));
}

TEST_F(AnalyticsTest, RequestEmitsMonitorEvent) {
  grant_researcher();
  const std::size_t before = store_.events().size();
  ASSERT_TRUE(
      analytics_.request(kResearcher, kRequest, kTool, kDataset, 0x1));
  const auto events = store_.events_since(before);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].topic, kEvAnalyticsRequested);
  EXPECT_EQ(events[0].args, (std::vector<Word>{kRequest, kTool, kDataset}));
}

TEST(ContractDeterminism, TwoStoresSameCallsSameDigest) {
  auto run_scenario = [] {
    vm::ContractStore store;
    PolicyContract policy(store, 1, 1);
    RegistryContract registry(store, 1, 1);
    policy.register_dataset(kHospital, kDataset);
    policy.grant(kHospital, kDataset, kResearcher, kPermCompute);
    registry.register_dataset(kHospital, kDataset, 0xaa, 10, 1);
    return store.digest();
  };
  EXPECT_EQ(run_scenario(), run_scenario());
}

}  // namespace
}  // namespace mc::contracts
