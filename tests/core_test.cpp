// Core transform tests: local systems, composition, global query
// pipeline, scheduler, architecture baselines, TransformedNetwork.
#include <gtest/gtest.h>

#include <cmath>

#include "core/baselines.hpp"
#include "core/compose.hpp"
#include "core/global_query.hpp"
#include "core/local_system.hpp"
#include "core/scheduler.hpp"
#include "core/transform.hpp"
#include "learn/metrics.hpp"

namespace mc::core {
namespace {

std::vector<med::CommonRecord> records_of(std::size_t n, std::uint64_t seed) {
  std::vector<med::CommonRecord> out;
  for (const auto& p :
       med::generate_cohort({.patients = n, .seed = seed}))
    out.push_back(med::to_common(p));
  return out;
}

learn::QueryVector aggregate_query() {
  learn::QueryVector qv;
  qv.task = learn::TaskKind::AggregateStats;
  qv.aggregate_field = "systolic_bp";
  return qv;
}

TEST(LocalSystem, RetrieveProjectsCohort) {
  LocalSystem site("s0", records_of(200, 1));
  learn::QueryVector qv;
  qv.task = learn::TaskKind::RetrieveData;
  qv.cohort.where = {{"age", 70, 200}};
  qv.cohort.select = {"age", "glucose"};
  const LocalTaskResult result =
      site.execute(qv, nullptr, learn::SgdConfig{});
  EXPECT_TRUE(result.executed);
  EXPECT_EQ(result.rows_scanned, 200u);
  EXPECT_EQ(result.rows.size(), result.rows_matched);
  for (const auto& row : result.rows) EXPECT_GE(row[0], 70.0);
  EXPECT_EQ(result.result_bytes, result.rows.size() * 2 * sizeof(double));
}

TEST(LocalSystem, TrainReturnsParamsAndWeight) {
  LocalSystem site("s0", records_of(300, 2));
  learn::QueryVector qv;
  qv.task = learn::TaskKind::TrainModel;
  qv.label = learn::LabelKind::Stroke;
  learn::SgdConfig sgd;
  sgd.epochs = 3;
  const LocalTaskResult result = site.execute(qv, nullptr, sgd);
  EXPECT_TRUE(result.executed);
  EXPECT_EQ(result.model_params.size(), med::kFeatureCount + 1);
  EXPECT_DOUBLE_EQ(result.sample_weight, 300.0);
  EXPECT_GT(result.flops, 0u);
}

TEST(LocalSystem, EmptyCohortDoesNotExecuteTraining) {
  LocalSystem site("s0", records_of(50, 3));
  learn::QueryVector qv;
  qv.task = learn::TaskKind::TrainModel;
  qv.cohort.where = {{"age", 500, 600}};  // matches nobody
  const LocalTaskResult result =
      site.execute(qv, nullptr, learn::SgdConfig{});
  EXPECT_FALSE(result.executed);
  EXPECT_DOUBLE_EQ(result.sample_weight, 0.0);
}

TEST(Compose, ParametersAreSampleWeighted) {
  LocalTaskResult a, b;
  a.executed = b.executed = true;
  a.model_params = {1.0, 1.0};
  a.sample_weight = 100;
  b.model_params = {3.0, 3.0};
  b.sample_weight = 300;
  const auto avg = compose_parameters({a, b});
  ASSERT_EQ(avg.size(), 2u);
  EXPECT_DOUBLE_EQ(avg[0], 2.5);  // (100*1 + 300*3) / 400

  // Shape mismatches and empty results are skipped, not fatal.
  LocalTaskResult c;
  c.executed = true;
  c.model_params = {9.0};
  c.sample_weight = 1;
  EXPECT_EQ(compose_parameters({a, b, c}).size(), 2u);
  EXPECT_TRUE(compose_parameters({}).empty());
}

TEST(Compose, RowsAndAggregates) {
  LocalTaskResult a, b;
  a.rows = {{1.0}, {2.0}};
  b.rows = {{3.0}};
  EXPECT_EQ(compose_rows({a, b}).size(), 3u);

  a.aggregate.add(10);
  a.aggregate.add(20);
  b.aggregate.add(30);
  const med::Aggregate merged = compose_aggregate({a, b});
  EXPECT_EQ(merged.count, 3u);
  EXPECT_DOUBLE_EQ(merged.mean, 20.0);
}

class GlobalQueryTest : public ::testing::Test {
 protected:
  GlobalQueryTest() {
    for (int s = 0; s < 3; ++s)
      sites_.emplace_back("site-" + std::to_string(s),
                          records_of(150, 10 + s));
    for (const auto& site : sites_) ptrs_.push_back(&site);
  }

  std::vector<LocalSystem> sites_;
  std::vector<const LocalSystem*> ptrs_;
  GlobalQueryConfig config_;
};

TEST_F(GlobalQueryTest, AggregateMatchesDirectComputation) {
  GlobalQueryService service(ptrs_, config_);
  const QueryExecution exec = service.submit(aggregate_query());
  EXPECT_EQ(exec.sites_executed, 3u);
  EXPECT_EQ(exec.sites_denied, 0u);

  med::Aggregate direct;
  for (const auto& site : sites_)
    direct.merge(
        med::aggregate_field(site.records(), {}, "systolic_bp"));
  EXPECT_EQ(exec.aggregate.count, direct.count);
  EXPECT_NEAR(exec.aggregate.mean, direct.mean, 1e-9);
  EXPECT_EQ(exec.aggregate.count, 450u);
}

TEST_F(GlobalQueryTest, FederatedTrainingProducesUsableModel) {
  GlobalQueryService service(ptrs_, config_);
  learn::QueryVector qv;
  qv.task = learn::TaskKind::TrainModel;
  qv.label = learn::LabelKind::Stroke;
  qv.federated_rounds = 20;
  const QueryExecution exec = service.submit(qv);
  ASSERT_EQ(exec.model_params.size(), med::kFeatureCount + 1);

  // The composed model must beat chance on a fresh cohort.
  learn::LogisticModel model(med::kFeatureCount);
  model.set_parameters(exec.model_params);
  const auto test = learn::dataset_from_records(records_of(400, 99),
                                                learn::LabelKind::Stroke);
  EXPECT_GT(learn::auc(model.predict(test.x), test.y), 0.6);
  EXPECT_GT(exec.total_flops, 0u);
  // Only parameters crossed site boundaries.
  EXPECT_LT(exec.result_bytes_moved, 3u * 5u * 1'000u);
}

TEST_F(GlobalQueryTest, FederatedMlpVariant) {
  GlobalQueryService service(ptrs_, config_);
  learn::QueryVector qv;
  qv.task = learn::TaskKind::TrainModel;
  qv.label = learn::LabelKind::Stroke;
  qv.model = learn::ModelKind::Mlp;
  qv.federated_rounds = 10;
  const QueryExecution exec = service.submit(qv);
  // MLP parameter vector: d*h + h + h + 1.
  const std::size_t d = med::kFeatureCount, h = 16;
  ASSERT_EQ(exec.model_params.size(), d * h + h + h + 1);

  learn::Mlp model(d, h);
  model.set_parameters(exec.model_params);
  const auto test = learn::dataset_from_records(records_of(400, 98),
                                                learn::LabelKind::Stroke);
  EXPECT_GT(learn::auc(model.predict(test.x), test.y), 0.55);
}

TEST_F(GlobalQueryTest, TextEntryPointEndToEnd) {
  GlobalQueryService service(ptrs_, config_);
  const auto exec = service.submit_text("count smokers with age over 60");
  ASSERT_TRUE(exec.has_value());
  EXPECT_EQ(exec->qv.task, learn::TaskKind::AggregateStats);
  EXPECT_GT(exec->aggregate.count, 0u);
  EXPECT_LT(exec->aggregate.count, 450u);  // filtered cohort
  EXPECT_FALSE(service.submit_text("gibberish").has_value());
}

TEST_F(GlobalQueryTest, StageTimingsPopulated) {
  GlobalQueryService service(ptrs_, config_);
  const QueryExecution exec = service.submit(aggregate_query());
  EXPECT_GT(exec.timings.execute_s, 0.0);
  EXPECT_GE(exec.timings.total(), exec.timings.execute_s);
}

TEST(GlobalQueryGate, PolicyDenialSkipsSites) {
  // Build two sites, grant compute on only one.
  std::vector<LocalSystem> sites;
  sites.emplace_back("site-a", records_of(80, 20));
  sites.emplace_back("site-b", records_of(80, 21));

  vm::ContractStore store;
  contracts::PolicyContract policy(store, 1, 1);
  contracts::AnalyticsContract analytics(store, 1, 1);
  oracle::MonitorNode monitor(store);
  constexpr contracts::Word kBridge = 0xb;
  ASSERT_TRUE(analytics.init(1, kBridge, policy.id()));
  oracle::OffchainBridge bridge(analytics, policy, monitor, kBridge);

  constexpr contracts::Word kResearcher = 0x77;
  ASSERT_TRUE(policy.register_dataset(fnv1a("site-a"), fnv1a("site-a")));
  ASSERT_TRUE(policy.register_dataset(fnv1a("site-b"), fnv1a("site-b")));
  ASSERT_TRUE(policy.grant(fnv1a("site-a"), fnv1a("site-a"), kResearcher,
                           contracts::kPermCompute));
  // site-b grants nothing.

  ChainGate gate;
  gate.policy = &policy;
  gate.analytics = &analytics;
  gate.bridge = &bridge;
  gate.requester = kResearcher;
  GlobalQueryService service({&sites[0], &sites[1]}, {}, gate);

  const QueryExecution exec = service.submit(aggregate_query());
  EXPECT_EQ(exec.sites_denied, 1u);
  EXPECT_EQ(exec.sites_executed, 1u);
  EXPECT_EQ(exec.aggregate.count, 80u);  // only site-a contributed

  // The permitted request completed on-chain through the bridge.
  EXPECT_EQ(analytics.status(1), contracts::RequestStatus::Done);
}

TEST(Scheduler, PrefersDataLocality) {
  // Hub matches the sites' speed, so shipping data buys nothing.
  MoveComputeScheduler scheduler(
      {{1e10, 0}, {1e10, 0}}, /*hub=*/{1e10, 0}, /*wan=*/125e6);
  std::vector<SchedTask> tasks = {
      {"t0", 0, 1e9, 1 << 20, false},
      {"t1", 1, 1e9, 1 << 20, false},
  };
  const Schedule schedule = scheduler.schedule(tasks);
  EXPECT_EQ(schedule.moved_to_hub, 0u);
  EXPECT_DOUBLE_EQ(schedule.locality(), 1.0);
  EXPECT_EQ(schedule.total_bytes_moved, 0u);
  // Two tasks at two sites run in parallel: makespan = one task.
  EXPECT_NEAR(schedule.makespan_s, 0.1, 1e-9);
}

TEST(Scheduler, OverloadedSiteSpillsToHub) {
  // One slow site, many tasks: later tasks ship to the big hub.
  MoveComputeScheduler scheduler({{1e9, 0}}, {1e11, 0}, 1e9);
  std::vector<SchedTask> tasks;
  for (int i = 0; i < 6; ++i)
    tasks.push_back({"t" + std::to_string(i), 0, 5e9, 10 << 20, false});
  const Schedule schedule = scheduler.schedule(tasks);
  EXPECT_GT(schedule.moved_to_hub, 0u);
  EXPECT_LT(schedule.locality(), 1.0);
  EXPECT_GT(schedule.total_bytes_moved, 0u);
}

TEST(Scheduler, HubOnlyTasksAlwaysShip) {
  MoveComputeScheduler scheduler({{1e12, 0}}, {1e10, 0}, 1e9);
  const Schedule schedule =
      scheduler.schedule({{"big", 0, 1e9, 1 << 20, true}});
  EXPECT_EQ(schedule.moved_to_hub, 1u);
}

TEST(Scheduler, DeadSiteReschedulesToReplica) {
  MoveComputeScheduler scheduler({{1e10, 0}, {1e10, 0}, {1e10, 0}},
                                 /*hub=*/{1e10, 0}, /*wan=*/125e6);
  scheduler.set_site_alive(0, false);
  SchedTask task{"t0", /*data_site=*/0, 1e9, 1 << 20, false};
  task.replica_sites = {1};
  const Schedule schedule = scheduler.schedule({task});
  ASSERT_EQ(schedule.placements.size(), 1u);
  const Placement& p = schedule.placements[0];
  EXPECT_TRUE(p.rescheduled);
  EXPECT_FALSE(p.failed);
  EXPECT_TRUE(p.at_data);            // a replica still counts as local
  EXPECT_EQ(p.site, 1u);
  EXPECT_EQ(p.bytes_moved, 0u);
  EXPECT_EQ(schedule.reschedules, 1u);
  EXPECT_EQ(schedule.failed_tasks, 0u);
}

TEST(Scheduler, DeadSiteWithoutReplicasShipsToHub) {
  MoveComputeScheduler scheduler({{1e10, 0}}, {1e10, 0}, 125e6);
  scheduler.set_site_alive(0, false);
  const Schedule schedule =
      scheduler.schedule({{"t0", 0, 1e9, 1 << 20, false}});
  const Placement& p = schedule.placements[0];
  EXPECT_TRUE(p.rescheduled);
  EXPECT_FALSE(p.failed);
  EXPECT_EQ(p.site, kHubSite);
  EXPECT_GT(p.bytes_moved, 0u);
  EXPECT_EQ(schedule.moved_to_hub, 1u);
}

TEST(Scheduler, RetryBudgetExhaustionFailsTask) {
  // Site 0 and both replicas are dead; the two probes burn the whole
  // budget, so the hub is no longer reachable either.
  MoveComputeScheduler scheduler({{1e10, 0}, {1e10, 0}, {1e10, 0}},
                                 {1e10, 0}, 125e6, /*retry_budget=*/2);
  scheduler.set_site_alive(0, false);
  scheduler.set_site_alive(1, false);
  scheduler.set_site_alive(2, false);
  SchedTask task{"t0", 0, 1e9, 1 << 20, false};
  task.replica_sites = {1, 2};
  const Schedule schedule = scheduler.schedule({task});
  EXPECT_TRUE(schedule.placements[0].failed);
  EXPECT_EQ(schedule.failed_tasks, 1u);

  // A wider budget leaves one probe for the hub: the task survives.
  MoveComputeScheduler generous({{1e10, 0}, {1e10, 0}, {1e10, 0}},
                                {1e10, 0}, 125e6, /*retry_budget=*/3);
  generous.set_site_alive(0, false);
  generous.set_site_alive(1, false);
  generous.set_site_alive(2, false);
  const Schedule rescued = generous.schedule({task});
  EXPECT_FALSE(rescued.placements[0].failed);
  EXPECT_EQ(rescued.placements[0].site, kHubSite);
}

TEST(Scheduler, PerTaskRetriesAttributeDegradation) {
  // Four tasks, four fates: clean local placement (0 retries), one
  // replica probe (1), replica probe then hub (2), budget exhausted (2).
  // Slow WAN keeps the hub a last resort, so live-replica tasks stay local.
  MoveComputeScheduler scheduler({{1e10, 0}, {1e10, 0}, {1e10, 0}},
                                 {1e10, 0}, /*wan=*/1e6, /*retry_budget=*/2);
  scheduler.set_site_alive(0, false);
  scheduler.set_site_alive(2, false);

  SchedTask clean{"clean", /*data_site=*/1, 1e9, 1 << 20, false};
  SchedTask replica_hit{"replica", 0, 1e9, 1 << 20, false};
  replica_hit.replica_sites = {1};
  SchedTask via_hub{"hub", 0, 1e9, 1 << 20, false};
  via_hub.replica_sites = {2};  // dead probe, then the hub
  SchedTask doomed{"doomed", 0, 1e9, 1 << 20, false};
  doomed.replica_sites = {2, 2};  // two dead probes burn the budget

  const Schedule schedule =
      scheduler.schedule({clean, replica_hit, via_hub, doomed});
  ASSERT_EQ(schedule.placements.size(), 4u);
  EXPECT_EQ(schedule.placements[0].retries, 0u);
  EXPECT_EQ(schedule.placements[1].retries, 1u);
  EXPECT_EQ(schedule.placements[1].site, 1u);
  EXPECT_EQ(schedule.placements[2].retries, 2u);
  EXPECT_EQ(schedule.placements[2].site, kHubSite);
  EXPECT_EQ(schedule.placements[3].retries, 2u);
  EXPECT_TRUE(schedule.placements[3].failed);
  // Schedule-wide totals stay as before; retries refine, not replace.
  EXPECT_EQ(schedule.reschedules, 3u);
  EXPECT_EQ(schedule.failed_tasks, 1u);
}

TEST(Scheduler, HubOnlyTaskFailsWhenHubIsDown) {
  MoveComputeScheduler scheduler({{1e10, 0}}, {1e12, 0}, 125e6);
  scheduler.set_hub_alive(false);
  const Schedule schedule =
      scheduler.schedule({{"big", 0, 1e9, 1 << 20, /*hub_only=*/true}});
  EXPECT_TRUE(schedule.placements[0].failed);
  EXPECT_EQ(schedule.failed_tasks, 1u);
}

TEST(Scheduler, DeadlineMissesAreReported) {
  MoveComputeScheduler scheduler({{1e9, 0}}, {1e9, 0}, /*wan=*/1e6);
  SchedTask task{"slow", 0, /*flops=*/5e9, 1 << 20, false};
  task.deadline_s = 1.0;  // the 5s compute cannot make this
  const Schedule schedule = scheduler.schedule({task});
  EXPECT_FALSE(schedule.placements[0].failed);
  EXPECT_TRUE(schedule.placements[0].deadline_missed);
  EXPECT_EQ(schedule.deadline_misses, 1u);
}

TEST(Baselines, TransformedDominates) {
  ArchWorkload w;
  const ArchReport duplicated = run_duplicated(w);
  const ArchReport transformed = run_transformed(w);
  const ArchReport centralized = run_centralized(w);

  EXPECT_LT(transformed.makespan_s, duplicated.makespan_s);
  EXPECT_LT(transformed.makespan_s, centralized.makespan_s);
  EXPECT_LT(transformed.bytes_moved, centralized.bytes_moved);
  EXPECT_LT(centralized.bytes_moved, duplicated.bytes_moved);
  EXPECT_LT(transformed.energy_j, duplicated.energy_j);
  EXPECT_DOUBLE_EQ(transformed.useful_fraction, 1.0);
  EXPECT_NEAR(duplicated.useful_fraction,
              1.0 / static_cast<double>(w.chain_nodes), 1e-12);
}

TEST(Baselines, DuplicatedWasteGrowsLinearlyInNodes) {
  ArchWorkload w;
  w.chain_nodes = 8;
  const double e8 = run_duplicated(w).energy_j;
  w.chain_nodes = 16;
  const double e16 = run_duplicated(w).energy_j;
  EXPECT_NEAR(e16 / e8, 2.0, 0.15);

  // Transformed energy is independent of replication width.
  ArchWorkload t;
  t.chain_nodes = 8;
  const double t8 = run_transformed(t).energy_j;
  t.chain_nodes = 16;
  EXPECT_DOUBLE_EQ(run_transformed(t).energy_j, t8);
}

TEST(TransformedNetwork, EndToEndQueryWithPolicy) {
  TransformedNetworkConfig config;
  config.cohort.patients = 400;
  config.federation.hospital_count = 3;
  TransformedNetwork net(config);
  EXPECT_EQ(net.local_systems().size(), 5u);  // 3 hospitals + 2 modality

  // Without grants, every site denies (the unfiltered count query is
  // not prunable, so all five reach the gate).
  const auto denied = net.query_text("count all patients");
  ASSERT_TRUE(denied.has_value());
  EXPECT_EQ(denied->sites_executed, 0u);
  EXPECT_EQ(denied->sites_denied, 5u);

  net.grant_researcher_everywhere();
  const auto allowed = net.query_text("count all patients");
  ASSERT_TRUE(allowed.has_value());
  EXPECT_EQ(allowed->sites_denied, 0u);
  EXPECT_EQ(allowed->sites_executed, 5u);
  EXPECT_GT(allowed->aggregate.count, 0u);

  // Revoking one site shrinks the cohort.
  ASSERT_TRUE(net.revoke_researcher("hospital-0"));
  const auto partial = net.query_text("count all patients");
  EXPECT_EQ(partial->sites_denied, 1u);
  EXPECT_LT(partial->aggregate.count, allowed->aggregate.count);

  // A smoker-filtered query is pruned at the modality sites, whose
  // records carry no smoking data — they are skipped before the gate.
  const auto pruned = net.query_text("count smokers");
  EXPECT_GT(pruned->sites_pruned, 0u);
  EXPECT_EQ(pruned->sites_denied + pruned->sites_executed +
                pruned->sites_pruned,
            5u);
}

TEST(TransformedNetwork, AnchorsAuditAndTamperDetection) {
  TransformedNetworkConfig config;
  config.cohort.patients = 200;
  config.federation.hospital_count = 2;
  TransformedNetwork net(config);

  EXPECT_TRUE(net.audit_site("hospital-0").clean());
  net.mutable_site_dataset(0).tamper(0, 50.0);
  EXPECT_FALSE(net.audit_site("hospital-0").digest_matches);
  // The owner can re-anchor only legitimate updates; after refresh the
  // (tampered) state is the new committed truth — which is precisely why
  // update_digest is owner-gated on-chain.
  EXPECT_TRUE(net.refresh_site_anchor("hospital-0"));
  EXPECT_TRUE(net.audit_site("hospital-0").clean());
}

TEST(TransformedNetwork, CoreDatasetIntegratesFederation) {
  TransformedNetworkConfig config;
  config.cohort.patients = 500;
  config.federation.hospital_count = 3;
  config.federation.token_missing_rate = 0.0;
  TransformedNetwork net(config);

  med::IntegrationReport report;
  const auto& core = net.core_dataset(&report);
  EXPECT_EQ(core.size(), 500u);
  EXPECT_EQ(report.patients_merged, 500u);
  EXPECT_GT(report.mean_modalities_per_patient, 1.0);
}

TEST(TransformedNetwork, MonitorSeesPolicyEvents) {
  TransformedNetworkConfig config;
  config.cohort.patients = 100;
  config.federation.hospital_count = 2;
  TransformedNetwork net(config);
  std::size_t grants_seen = 0;
  net.monitor().subscribe(contracts::kEvAccessGranted,
                          [&](const vm::Event&) { ++grants_seen; });
  net.grant_researcher_everywhere();
  net.monitor().poll();
  EXPECT_EQ(grants_seen, 4u);  // 2 hospitals + wearable + genome
}

}  // namespace
}  // namespace mc::core
