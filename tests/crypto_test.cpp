// Crypto substrate tests: standard vectors plus protocol properties.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/merkle.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha256_batch.hpp"

namespace mc::crypto {
namespace {

// --- SHA-256 (FIPS 180-4 / NIST vectors) ---

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(5);
  for (const std::size_t n : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 1000u}) {
    const Bytes data = rng.bytes(n);
    Sha256 ctx;
    std::size_t offset = 0;
    while (offset < data.size()) {
      const std::size_t take = std::min<std::size_t>(17, data.size() - offset);
      ctx.update(BytesView(data.data() + offset, take));
      offset += take;
    }
    EXPECT_EQ(ctx.finalize(), sha256(BytesView(data))) << "n=" << n;
  }
}

TEST(Sha256, DoubleHashAndPair) {
  const Hash256 once = sha256("x");
  EXPECT_EQ(sha256d(str_bytes("x")), sha256(BytesView(once.data)));
  const Hash256 a = sha256("a"), b = sha256("b");
  EXPECT_NE(sha256_pair(a, b), sha256_pair(b, a));
}

// --- Multi-lane batch engine (DESIGN.md §15) ---

/// Force a backend for one scope and restore the previous one on exit,
/// so test order never leaks backend state.
class ScopedHashBackend {
 public:
  explicit ScopedHashBackend(HashBackend backend) : prev_(hash_backend()) {
    set_hash_backend(backend);
  }
  ~ScopedHashBackend() { set_hash_backend(prev_); }
  ScopedHashBackend(const ScopedHashBackend&) = delete;
  ScopedHashBackend& operator=(const ScopedHashBackend&) = delete;

 private:
  HashBackend prev_;
};

/// Every backend worth exercising on this host. Forcing a kernel the CPU
/// lacks degrades down the ladder, so listing all of them is always safe
/// — a degraded entry just re-tests a narrower kernel.
const std::vector<HashBackend>& all_backends() {
  static const std::vector<HashBackend> kBackends = {
      HashBackend::kPortable, HashBackend::kSse2, HashBackend::kAvx2,
      HashBackend::kSimd, HashBackend::kAuto};
  return kBackends;
}

TEST(Sha256Batch, NistVectorsOnEveryBackend) {
  const std::vector<Bytes> inputs = {
      to_bytes(""), to_bytes("abc"),
      to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      Bytes(1'000'000, static_cast<std::uint8_t>('a'))};
  const std::vector<std::string> expected = {
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
      "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"};
  for (const HashBackend backend : all_backends()) {
    ScopedHashBackend scope(backend);
    // Duplicate each vector across a full lane group so the SIMD path
    // actually engages (n >= 4 and equal-length runs).
    std::vector<Bytes> lanes;
    for (const Bytes& in : inputs)
      for (int i = 0; i < 8; ++i) lanes.push_back(in);
    const std::vector<Hash256> out = sha256_many(lanes);
    for (std::size_t i = 0; i < lanes.size(); ++i)
      EXPECT_EQ(to_hex(out[i]), expected[i / 8])
          << "backend " << static_cast<int>(backend) << " input " << i;
  }
}

TEST(Sha256Batch, CrossBackendBitIdentical) {
  // Random lengths 0..4 KiB plus the padding boundaries; mixed lengths in
  // one call exercise the equal-length grouping and the straggler path.
  Rng rng(41);
  std::vector<Bytes> inputs;
  for (const std::size_t n : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 127u, 128u})
    inputs.push_back(rng.bytes(n));
  for (int i = 0; i < 64; ++i) inputs.push_back(rng.bytes(rng.uniform(4096)));
  // Equal-length duplicates so full SIMD groups form.
  for (int i = 0; i < 16; ++i) inputs.push_back(inputs[2]);

  std::vector<Hash256> reference;
  {
    ScopedHashBackend scope(HashBackend::kPortable);
    reference = sha256_many(inputs);
  }
  for (std::size_t i = 0; i < inputs.size(); ++i)
    EXPECT_EQ(reference[i], sha256(BytesView(inputs[i]))) << "i=" << i;
  for (const HashBackend backend : all_backends()) {
    ScopedHashBackend scope(backend);
    EXPECT_EQ(sha256_many(inputs), reference)
        << "backend " << static_cast<int>(backend);
  }
}

TEST(Sha256Batch, PairAndLevelMatchScalar) {
  Rng rng(42);
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 33u}) {
    std::vector<Hash256> left(n), right(n);
    for (std::size_t i = 0; i < n; ++i) {
      left[i] = sha256(BytesView(rng.bytes(16)));
      right[i] = sha256(BytesView(rng.bytes(16)));
    }
    std::vector<Hash256> want_pairs(n);
    for (std::size_t i = 0; i < n; ++i)
      want_pairs[i] = sha256_pair(left[i], right[i]);
    std::vector<Hash256> want_level((n + 1) / 2);
    for (std::size_t p = 0; p < want_level.size(); ++p)
      want_level[p] = sha256_pair(
          left[2 * p], 2 * p + 1 < n ? left[2 * p + 1] : left[2 * p]);
    for (const HashBackend backend : all_backends()) {
      ScopedHashBackend scope(backend);
      std::vector<Hash256> pairs(n), level(want_level.size());
      sha256_pair_many(left.data(), right.data(), n, pairs.data());
      sha256_merkle_level(left.data(), n, level.data());
      EXPECT_EQ(pairs, want_pairs) << "n=" << n;
      EXPECT_EQ(level, want_level) << "n=" << n;
    }
  }
}

TEST(Sha256Batch, MidstateSweepMatchesScalar) {
  // Prefix lengths straddle block boundaries so the buffered residue the
  // lanes resume from takes every shape (empty, partial, nearly full);
  // the prefix is absorbed in ragged increments to vary buffer state.
  Rng rng(43);
  for (const std::size_t prefix_len :
       {0u, 1u, 55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes prefix = rng.bytes(prefix_len);
    Sha256Midstate midstate{BytesView(prefix)};
    constexpr std::size_t kTail = 28;
    constexpr std::size_t kN = 13;
    std::uint8_t tails[kN][kTail];
    for (auto& tail : tails)
      for (auto& byte : tail)
        byte = static_cast<std::uint8_t>(rng.uniform(256));
    for (const bool double_hash : {false, true}) {
      std::vector<Hash256> want(kN);
      for (std::size_t i = 0; i < kN; ++i) {
        Sha256 ctx;
        std::size_t offset = 0;  // ragged absorb: 1, 2, 4, 8, ... bytes
        for (std::size_t step = 1; offset < prefix.size(); step *= 2) {
          const std::size_t take =
              std::min(step, prefix.size() - offset);
          ctx.update(BytesView(prefix.data() + offset, take));
          offset += take;
        }
        ctx.update(BytesView(tails[i], kTail));
        const Hash256 h = ctx.finalize();
        want[i] = double_hash ? sha256(BytesView(h.data)) : h;
      }
      for (const HashBackend backend : all_backends()) {
        ScopedHashBackend scope(backend);
        std::vector<Hash256> got(kN);
        midstate.finish_many(&tails[0][0], kTail, kTail, kN, double_hash,
                             got.data());
        EXPECT_EQ(got, want) << "prefix " << prefix_len << " double "
                             << double_hash << " backend "
                             << static_cast<int>(backend);
      }
    }
  }
}

TEST(Sha256Batch, DigestCountCountsLanes) {
  // The satellite contract: digest_count() reports digests produced, not
  // kernel invocations, so a 32-message batch adds exactly 32 on every
  // backend.
  std::vector<Bytes> inputs;
  Rng rng(44);
  for (int i = 0; i < 32; ++i) inputs.push_back(rng.bytes(100));
  for (const HashBackend backend : all_backends()) {
    ScopedHashBackend scope(backend);
    const std::uint64_t before = Sha256::digest_count();
    (void)sha256_many(inputs);
    EXPECT_EQ(Sha256::digest_count() - before, 32u)
        << "backend " << static_cast<int>(backend);
  }
}

TEST(Sha256Batch, BackendSelectionSurface) {
  ScopedHashBackend scope(HashBackend::kPortable);
  EXPECT_EQ(hash_backend(), HashBackend::kPortable);
  EXPECT_EQ(active_hash_kernel(), HashKernel::kScalar);
  EXPECT_EQ(hash_lane_width(), 1u);
  set_hash_backend(HashBackend::kAuto);
  // Whatever resolves, the name and width must be consistent.
  const HashKernel kernel = active_hash_kernel();
  EXPECT_EQ(hash_lane_width(), static_cast<std::size_t>(kernel));
  EXPECT_STRNE(hash_kernel_name(kernel), "unknown");
}

TEST(Merkle, RootIsBackendIndependent) {
  std::vector<Hash256> leaves;
  for (int i = 0; i < 37; ++i) leaves.push_back(sha256(std::to_string(i)));
  Hash256 reference;
  {
    ScopedHashBackend scope(HashBackend::kPortable);
    reference = MerkleTree(leaves).root();
  }
  for (const HashBackend backend : all_backends()) {
    ScopedHashBackend scope(backend);
    EXPECT_EQ(MerkleTree(leaves).root(), reference);
    EXPECT_EQ(MerkleFrontier(leaves).root(), reference);
  }
}

// --- HMAC-SHA256 (RFC 4231) ---

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(BytesView(key), str_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(str_bytes("Jefe"),
                               str_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyHashedFirst) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      to_hex(hmac_sha256(
          BytesView(key),
          str_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DeriveKeyStableAndDistinct) {
  const Hash256 k1 = derive_key(str_bytes("master"), "session-1");
  const Hash256 k2 = derive_key(str_bytes("master"), "session-2");
  EXPECT_NE(k1, k2);
  EXPECT_EQ(k1, derive_key(str_bytes("master"), "session-1"));
}

// --- Merkle trees ---

TEST(Merkle, EmptyTreeZeroRoot) {
  MerkleTree tree({});
  EXPECT_TRUE(tree.root().is_zero());
  EXPECT_EQ(tree.leaf_count(), 0u);
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  const Hash256 leaf = sha256("leaf");
  MerkleTree tree({leaf});
  EXPECT_EQ(tree.root(), leaf);
  EXPECT_TRUE(MerkleTree::verify(leaf, 0, tree.prove(0), tree.root()));
}

class MerkleProofTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofTest, AllProofsVerify) {
  const std::size_t n = GetParam();
  std::vector<Hash256> leaves;
  for (std::size_t i = 0; i < n; ++i)
    leaves.push_back(sha256("leaf-" + std::to_string(i)));
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(MerkleTree::verify(leaves[i], i, tree.prove(i), tree.root()))
        << "leaf " << i << " of " << n;
    // Wrong leaf must fail.
    EXPECT_FALSE(MerkleTree::verify(sha256("evil"), i, tree.prove(i),
                                    tree.root()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33,
                                           100));

TEST(Merkle, RootChangesOnAnyLeafChange) {
  std::vector<Hash256> leaves;
  for (int i = 0; i < 10; ++i) leaves.push_back(sha256(std::to_string(i)));
  const Hash256 root = MerkleTree(leaves).root();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto tampered = leaves;
    tampered[i] = sha256("tampered");
    EXPECT_NE(MerkleTree(tampered).root(), root);
  }
}

TEST(Merkle, RootOfByteLeaves) {
  const std::vector<Bytes> leaves = {to_bytes("a"), to_bytes("b")};
  EXPECT_EQ(merkle_root_of(leaves),
            sha256_pair(sha256("a"), sha256("b")));
}

// --- Incremental frontier ---

TEST(MerkleFrontier, EmptyMatchesEmptyTree) {
  MerkleFrontier frontier;
  EXPECT_TRUE(frontier.root().is_zero());
  EXPECT_EQ(frontier.leaf_count(), 0u);
}

// The load-bearing equivalence: after every single append the frontier
// root must equal a full MerkleTree rebuild over the same prefix —
// covering powers of two, one-off-ragged sizes and everything between.
TEST(MerkleFrontier, EveryPrefixMatchesFullRebuild) {
  constexpr std::size_t kMax = 130;
  std::vector<Hash256> leaves;
  MerkleFrontier frontier;
  for (std::size_t n = 1; n <= kMax; ++n) {
    leaves.push_back(sha256("leaf-" + std::to_string(n)));
    frontier.append(leaves.back());
    ASSERT_EQ(frontier.root(), MerkleTree(leaves).root())
        << "frontier diverged at " << n << " leaves";
    ASSERT_EQ(frontier.leaf_count(), n);
  }
}

TEST(MerkleFrontier, BulkConstructorMatchesAppendLoop) {
  std::vector<Hash256> leaves;
  for (int i = 0; i < 77; ++i) leaves.push_back(sha256(std::to_string(i)));
  const MerkleFrontier bulk(leaves);
  MerkleFrontier one_by_one;
  for (const Hash256& leaf : leaves) one_by_one.append(leaf);
  EXPECT_EQ(bulk.root(), one_by_one.root());
  EXPECT_EQ(bulk.leaf_count(), leaves.size());
}

// Proofs minted from a full tree must verify against the root the
// frontier reports — the dataset anchors frontier roots on-chain, and
// sites later prove record inclusion with MerkleTree proofs.
TEST(MerkleFrontier, TreeProofsVerifyAgainstFrontierRoot) {
  for (const std::size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 21u, 64u, 100u}) {
    std::vector<Hash256> leaves;
    MerkleFrontier frontier;
    for (std::size_t i = 0; i < n; ++i) {
      leaves.push_back(sha256("record-" + std::to_string(i)));
      frontier.append(leaves.back());
    }
    const MerkleTree tree(leaves);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_TRUE(
          MerkleTree::verify(leaves[i], i, tree.prove(i), frontier.root()))
          << "leaf " << i << " of " << n;
  }
}

TEST(MerkleFrontier, ClearResetsToEmpty) {
  MerkleFrontier frontier;
  frontier.append(sha256("x"));
  frontier.append(sha256("y"));
  frontier.clear();
  EXPECT_EQ(frontier.leaf_count(), 0u);
  EXPECT_TRUE(frontier.root().is_zero());
  // Reusable after clear: behaves like a fresh accumulator.
  frontier.append(sha256("z"));
  EXPECT_EQ(frontier.root(), sha256("z"));
}

// --- Schnorr ---

TEST(Schnorr, GroupParametersAreValid) {
  EXPECT_TRUE(is_prime_u64(SchnorrGroup::p));
  EXPECT_TRUE(is_prime_u64(SchnorrGroup::q));
  EXPECT_EQ(SchnorrGroup::p, 2 * SchnorrGroup::q + 1);
  // g generates the order-q subgroup.
  EXPECT_EQ(powmod(SchnorrGroup::g, SchnorrGroup::q, SchnorrGroup::p), 1u);
  EXPECT_NE(powmod(SchnorrGroup::g, 2, SchnorrGroup::p), 1u);
}

TEST(Schnorr, MillerRabinKnownCases) {
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(97));
  EXPECT_TRUE(is_prime_u64(2'147'483'647));  // M31
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_FALSE(is_prime_u64(561));     // Carmichael
  EXPECT_FALSE(is_prime_u64(341'550'071'728'321ULL));  // strong pseudoprime
}

TEST(Schnorr, SignVerifyRoundTrip) {
  Rng rng(1);
  const PrivateKey key = generate_key(rng);
  const Bytes msg = to_bytes("attack at dawn");
  const Signature sig = sign(key, BytesView(msg));
  EXPECT_TRUE(verify(key.pub, BytesView(msg), sig));
}

TEST(Schnorr, RejectsWrongMessageKeyAndSig) {
  Rng rng(2);
  const PrivateKey key = generate_key(rng);
  const PrivateKey other = generate_key(rng);
  const Bytes msg = to_bytes("hello");
  const Signature sig = sign(key, BytesView(msg));
  EXPECT_FALSE(verify(key.pub, str_bytes("hellp"), sig));
  EXPECT_FALSE(verify(other.pub, BytesView(msg), sig));
  Signature bad = sig;
  bad.s ^= 1;
  EXPECT_FALSE(verify(key.pub, BytesView(msg), bad));
  Signature bad_s = sig;
  bad_s.s = SchnorrGroup::q;  // out of range
  EXPECT_FALSE(verify(key.pub, BytesView(msg), bad_s));
  Signature bad_r = sig;
  bad_r.r = 0;  // degenerate commitment
  EXPECT_FALSE(verify(key.pub, BytesView(msg), bad_r));
  bad_r.r = SchnorrGroup::p;  // out of range
  EXPECT_FALSE(verify(key.pub, BytesView(msg), bad_r));
}

TEST(Schnorr, DeterministicNonceSameSignature) {
  const PrivateKey key = key_from_seed("stable-identity");
  const Bytes msg = to_bytes("msg");
  EXPECT_EQ(sign(key, BytesView(msg)), sign(key, BytesView(msg)));
}

TEST(Schnorr, SeededKeysStable) {
  EXPECT_EQ(key_from_seed("hospital-0").pub, key_from_seed("hospital-0").pub);
  EXPECT_NE(key_from_seed("hospital-0").pub.y,
            key_from_seed("hospital-1").pub.y);
}

TEST(Schnorr, AddressDerivation) {
  const PrivateKey key = key_from_seed("addr-test");
  const Address a = address_of(key.pub);
  EXPECT_FALSE(a.is_zero());
  EXPECT_EQ(a, address_of(key.pub));
  EXPECT_EQ(to_hex(a).size(), 40u);
}

class SchnorrSweep : public ::testing::TestWithParam<int> {};

TEST_P(SchnorrSweep, ManyKeysManyMessages) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const PrivateKey key = generate_key(rng);
  for (int i = 0; i < 20; ++i) {
    const Bytes msg = rng.bytes(1 + rng.uniform(64));
    const Signature sig = sign(key, BytesView(msg));
    EXPECT_TRUE(verify(key.pub, BytesView(msg), sig));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchnorrSweep, ::testing::Range(1, 9));

// --- Batch verification ---

/// Reference implementation: the verdict batch_verify must reproduce.
std::ptrdiff_t sequential_first_invalid(const std::vector<BatchItem>& items) {
  for (std::size_t i = 0; i < items.size(); ++i)
    if (!verify(items[i].key, items[i].message, items[i].sig))
      return static_cast<std::ptrdiff_t>(i);
  return -1;
}

struct BatchFixture {
  std::vector<PrivateKey> keys;
  std::vector<Bytes> msgs;
  std::vector<BatchItem> items;

  explicit BatchFixture(std::size_t n, Rng& rng) {
    keys.reserve(n);
    msgs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys.push_back(generate_key(rng));
      msgs.push_back(rng.bytes(1 + rng.uniform(48)));
    }
    // Two passes so msgs never reallocates under live views.
    for (std::size_t i = 0; i < n; ++i)
      items.push_back({keys[i].pub, BytesView(msgs[i]),
                       sign(keys[i], BytesView(msgs[i]))});
  }
};

TEST(SchnorrBatch, EmptyBatchAccepts) {
  Rng rng(11);
  EXPECT_TRUE(batch_verify({}, rng).ok());
}

TEST(SchnorrBatch, AllValidBatchesAccept) {
  Rng rng(12);
  for (std::size_t n : {1u, 2u, 4u, 7u, 8u, 33u, 100u}) {
    BatchFixture f(n, rng);
    const BatchResult res = batch_verify(f.items, rng);
    EXPECT_TRUE(res.ok()) << "n=" << n;
    EXPECT_EQ(res.first_invalid, -1);
  }
}

TEST(SchnorrBatch, IsolatesLowestFailingIndex) {
  Rng rng(13);
  // Corrupt several; the verdict must be the lowest index, matching the
  // sequential scan, for every batch size and corruption layout.
  for (std::size_t n : {5u, 16u, 64u, 128u}) {
    BatchFixture f(n, rng);
    std::vector<std::size_t> bad;
    for (std::size_t i = 0; i < n; ++i)
      if (rng.bernoulli(0.15)) bad.push_back(i);
    if (bad.empty()) bad.push_back(n / 2);
    for (std::size_t i : bad) f.items[i].sig.s ^= 1;
    const BatchResult res = batch_verify(f.items, rng);
    EXPECT_EQ(res.first_invalid, static_cast<std::ptrdiff_t>(bad.front()))
        << "n=" << n;
    EXPECT_EQ(res.first_invalid, sequential_first_invalid(f.items));
  }
}

TEST(SchnorrBatch, AgreesWithPerSigAcrossCorruptionModes) {
  Rng rng(14);
  // Every way a single item can be wrong: response/commitment flips,
  // wrong message, wrong key, out-of-range fields, degenerate values.
  const auto corruptions = std::vector<void (*)(BatchItem&, Rng&)>{
      [](BatchItem& it, Rng&) { it.sig.s ^= 1; },
      [](BatchItem& it, Rng&) { it.sig.r ^= 2; },
      [](BatchItem& it, Rng& r) { it.sig.s = r.next(); },
      [](BatchItem& it, Rng& r) { it.sig.r = r.next(); },
      [](BatchItem& it, Rng&) { it.sig.s = SchnorrGroup::q; },
      [](BatchItem& it, Rng&) { it.sig.r = 0; },
      [](BatchItem& it, Rng&) { it.sig.r = SchnorrGroup::p; },
      [](BatchItem& it, Rng&) { it.key.y = 0; },
      [](BatchItem& it, Rng&) { it.key.y = 1; },
      [](BatchItem& it, Rng& r) { it.key.y = r.next(); },
  };
  for (std::size_t mode = 0; mode < corruptions.size(); ++mode) {
    BatchFixture f(24, rng);
    const std::size_t victim = rng.uniform(f.items.size());
    corruptions[mode](f.items[victim], rng);
    const BatchResult res = batch_verify(f.items, rng);
    EXPECT_EQ(res.first_invalid, sequential_first_invalid(f.items))
        << "corruption mode " << mode << ", victim " << victim;
  }
}

TEST(SchnorrBatch, RejectsZ1CancellationForgery) {
  // The regression the random coefficients exist for: shift one response
  // up and another down by the same delta. Every naive z_i = 1 aggregate
  // is unchanged (the errors cancel in Σ s_i), yet both signatures are
  // individually invalid. batch_verify must reject and name index 0.
  Rng rng(15);
  BatchFixture f(8, rng);
  const std::uint64_t delta = 1 + rng.uniform(SchnorrGroup::q - 1);
  f.items[0].sig.s = (f.items[0].sig.s + delta) % SchnorrGroup::q;
  f.items[3].sig.s =
      (f.items[3].sig.s + SchnorrGroup::q - delta) % SchnorrGroup::q;
  ASSERT_FALSE(verify(f.items[0].key, f.items[0].message, f.items[0].sig));
  ASSERT_FALSE(verify(f.items[3].key, f.items[3].message, f.items[3].sig));

  // Demonstrate the cancellation really happens with unit coefficients:
  // g^(Σ s_i) · Π y_i^(e_i) · Π r_i^(-1) is the same group element before
  // and after the tamper, so a z_i = 1 scheme cannot see it. (We check the
  // invariant directly rather than re-deriving e_i: the two tampered s
  // values sum to the original total mod q.)
  // The real batch must still catch it:
  for (int round = 0; round < 8; ++round) {
    const BatchResult res = batch_verify(f.items, rng);
    EXPECT_EQ(res.first_invalid, 0) << "round " << round;
  }
}

TEST(SchnorrBatch, NegatedCommitmentRejected) {
  // The challenge binds the *transmitted* commitment bytes, so (p - r, s)
  // hashes to a fresh challenge and is invalid for the same message even
  // though r and p - r are the same quotient-group element. Batch and
  // sequential scans must both name index 5.
  Rng rng(16);
  BatchFixture f(12, rng);
  f.items[5].sig.r = SchnorrGroup::p - f.items[5].sig.r;  // -r mod p
  ASSERT_FALSE(verify(f.items[5].key, f.items[5].message, f.items[5].sig));
  for (int round = 0; round < 8; ++round) {
    const BatchResult res = batch_verify(f.items, rng);
    EXPECT_EQ(res.first_invalid, 5) << "round " << round;
  }
}

TEST(SchnorrBatch, NegatedKeyIsTheSameQuotientKey) {
  // y and p - y are one element of Z_p*/{±1}, so a signature valid under y
  // stays valid under p - y: with an even challenge g^s·(-y)^e lands on r
  // exactly, with an odd challenge it lands on p - r and exercises the ±
  // accept branch. Batch and per-sig must agree on accept for both
  // parities.
  Rng rng(17);
  bool saw_even = false;
  bool saw_odd = false;
  for (int attempt = 0; attempt < 64 && !(saw_even && saw_odd); ++attempt) {
    BatchFixture f(10, rng);
    BatchItem& it = f.items[7];
    it.key.y = SchnorrGroup::p - it.key.y;
    Sha256 chal_ctx;
    chal_ctx.update(BytesView(object_bytes(it.sig.r)));
    chal_ctx.update(it.message);
    const std::uint64_t e = chal_ctx.finalize().prefix_u64() % SchnorrGroup::q;
    ((e & 1) ? saw_odd : saw_even) = true;
    EXPECT_TRUE(verify(it.key, it.message, it.sig));
    const BatchResult res = batch_verify(f.items, rng);
    EXPECT_EQ(res.first_invalid, -1);
  }
  EXPECT_TRUE(saw_even) << "no even-challenge case hit in 64 attempts";
  EXPECT_TRUE(saw_odd) << "no odd-challenge case hit in 64 attempts";
}

TEST(SchnorrBatch, IdentityCosetKeyRejected) {
  // y ∈ {1, p-1} is the identity of the quotient group (the x = 0 key):
  // rejected structurally by verify and flagged at its index by the batch.
  Rng rng(18);
  BatchFixture f(8, rng);
  f.items[2].key.y = SchnorrGroup::p - 1;
  ASSERT_FALSE(verify(f.items[2].key, f.items[2].message, f.items[2].sig));
  const BatchResult res = batch_verify(f.items, rng);
  EXPECT_EQ(res.first_invalid, 2);
}

// --- ChaCha20 ---

TEST(ChaCha20, Rfc8439Vector) {
  // RFC 8439 §2.4.2 test vector.
  ChaChaKey key;
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  ChaChaNonce nonce{};
  nonce[3] = 0x00;
  nonce[7] = 0x4a;
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  const Bytes ciphertext =
      chacha20_xor(key, nonce, str_bytes(plaintext), 1);
  EXPECT_EQ(mc::to_hex(BytesView(ciphertext.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
}

TEST(ChaCha20, XorIsInvolution) {
  Rng rng(3);
  const ChaChaKey key = key_from_hash(sha256("key"));
  const ChaChaNonce nonce = nonce_from_counter(7);
  const Bytes plaintext = rng.bytes(300);
  const Bytes ciphertext = chacha20_xor(key, nonce, BytesView(plaintext));
  EXPECT_NE(ciphertext, plaintext);
  EXPECT_EQ(chacha20_xor(key, nonce, BytesView(ciphertext)), plaintext);
}

TEST(ChaCha20, SealOpenRoundTrip) {
  const ChaChaKey key = key_from_hash(sha256("session"));
  const Bytes msg = to_bytes("encrypted EMR payload");
  const SealedBox box = seal(key, nonce_from_counter(1), BytesView(msg));
  const auto opened = open(key, box);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(ChaCha20, TamperedCiphertextRejected) {
  const ChaChaKey key = key_from_hash(sha256("session"));
  SealedBox box = seal(key, nonce_from_counter(2), str_bytes("records"));
  box.ciphertext[0] ^= 0x01;
  EXPECT_FALSE(open(key, box).has_value());
}

TEST(ChaCha20, WrongKeyRejected) {
  const ChaChaKey key = key_from_hash(sha256("right"));
  const SealedBox box = seal(key, nonce_from_counter(3), str_bytes("data"));
  EXPECT_FALSE(open(key_from_hash(sha256("wrong")), box).has_value());
}

}  // namespace
}  // namespace mc::crypto
