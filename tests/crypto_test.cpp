// Crypto substrate tests: standard vectors plus protocol properties.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/hmac.hpp"
#include "crypto/merkle.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"

namespace mc::crypto {
namespace {

// --- SHA-256 (FIPS 180-4 / NIST vectors) ---

TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(to_hex(ctx.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Rng rng(5);
  for (const std::size_t n : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 1000u}) {
    const Bytes data = rng.bytes(n);
    Sha256 ctx;
    std::size_t offset = 0;
    while (offset < data.size()) {
      const std::size_t take = std::min<std::size_t>(17, data.size() - offset);
      ctx.update(BytesView(data.data() + offset, take));
      offset += take;
    }
    EXPECT_EQ(ctx.finalize(), sha256(BytesView(data))) << "n=" << n;
  }
}

TEST(Sha256, DoubleHashAndPair) {
  const Hash256 once = sha256("x");
  EXPECT_EQ(sha256d(str_bytes("x")), sha256(BytesView(once.data)));
  const Hash256 a = sha256("a"), b = sha256("b");
  EXPECT_NE(sha256_pair(a, b), sha256_pair(b, a));
}

// --- HMAC-SHA256 (RFC 4231) ---

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(hmac_sha256(BytesView(key), str_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(hmac_sha256(str_bytes("Jefe"),
                               str_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyHashedFirst) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      to_hex(hmac_sha256(
          BytesView(key),
          str_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DeriveKeyStableAndDistinct) {
  const Hash256 k1 = derive_key(str_bytes("master"), "session-1");
  const Hash256 k2 = derive_key(str_bytes("master"), "session-2");
  EXPECT_NE(k1, k2);
  EXPECT_EQ(k1, derive_key(str_bytes("master"), "session-1"));
}

// --- Merkle trees ---

TEST(Merkle, EmptyTreeZeroRoot) {
  MerkleTree tree({});
  EXPECT_TRUE(tree.root().is_zero());
  EXPECT_EQ(tree.leaf_count(), 0u);
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  const Hash256 leaf = sha256("leaf");
  MerkleTree tree({leaf});
  EXPECT_EQ(tree.root(), leaf);
  EXPECT_TRUE(MerkleTree::verify(leaf, 0, tree.prove(0), tree.root()));
}

class MerkleProofTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofTest, AllProofsVerify) {
  const std::size_t n = GetParam();
  std::vector<Hash256> leaves;
  for (std::size_t i = 0; i < n; ++i)
    leaves.push_back(sha256("leaf-" + std::to_string(i)));
  MerkleTree tree(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(MerkleTree::verify(leaves[i], i, tree.prove(i), tree.root()))
        << "leaf " << i << " of " << n;
    // Wrong leaf must fail.
    EXPECT_FALSE(MerkleTree::verify(sha256("evil"), i, tree.prove(i),
                                    tree.root()));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 33,
                                           100));

TEST(Merkle, RootChangesOnAnyLeafChange) {
  std::vector<Hash256> leaves;
  for (int i = 0; i < 10; ++i) leaves.push_back(sha256(std::to_string(i)));
  const Hash256 root = MerkleTree(leaves).root();
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto tampered = leaves;
    tampered[i] = sha256("tampered");
    EXPECT_NE(MerkleTree(tampered).root(), root);
  }
}

TEST(Merkle, RootOfByteLeaves) {
  const std::vector<Bytes> leaves = {to_bytes("a"), to_bytes("b")};
  EXPECT_EQ(merkle_root_of(leaves),
            sha256_pair(sha256("a"), sha256("b")));
}

// --- Schnorr ---

TEST(Schnorr, GroupParametersAreValid) {
  EXPECT_TRUE(is_prime_u64(SchnorrGroup::p));
  EXPECT_TRUE(is_prime_u64(SchnorrGroup::q));
  EXPECT_EQ(SchnorrGroup::p, 2 * SchnorrGroup::q + 1);
  // g generates the order-q subgroup.
  EXPECT_EQ(powmod(SchnorrGroup::g, SchnorrGroup::q, SchnorrGroup::p), 1u);
  EXPECT_NE(powmod(SchnorrGroup::g, 2, SchnorrGroup::p), 1u);
}

TEST(Schnorr, MillerRabinKnownCases) {
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(97));
  EXPECT_TRUE(is_prime_u64(2'147'483'647));  // M31
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_FALSE(is_prime_u64(561));     // Carmichael
  EXPECT_FALSE(is_prime_u64(341'550'071'728'321ULL));  // strong pseudoprime
}

TEST(Schnorr, SignVerifyRoundTrip) {
  Rng rng(1);
  const PrivateKey key = generate_key(rng);
  const Bytes msg = to_bytes("attack at dawn");
  const Signature sig = sign(key, BytesView(msg));
  EXPECT_TRUE(verify(key.pub, BytesView(msg), sig));
}

TEST(Schnorr, RejectsWrongMessageKeyAndSig) {
  Rng rng(2);
  const PrivateKey key = generate_key(rng);
  const PrivateKey other = generate_key(rng);
  const Bytes msg = to_bytes("hello");
  const Signature sig = sign(key, BytesView(msg));
  EXPECT_FALSE(verify(key.pub, str_bytes("hellp"), sig));
  EXPECT_FALSE(verify(other.pub, BytesView(msg), sig));
  Signature bad = sig;
  bad.s ^= 1;
  EXPECT_FALSE(verify(key.pub, BytesView(msg), bad));
  Signature bad_e = sig;
  bad_e.e = SchnorrGroup::q;  // out of range
  EXPECT_FALSE(verify(key.pub, BytesView(msg), bad_e));
}

TEST(Schnorr, DeterministicNonceSameSignature) {
  const PrivateKey key = key_from_seed("stable-identity");
  const Bytes msg = to_bytes("msg");
  EXPECT_EQ(sign(key, BytesView(msg)), sign(key, BytesView(msg)));
}

TEST(Schnorr, SeededKeysStable) {
  EXPECT_EQ(key_from_seed("hospital-0").pub, key_from_seed("hospital-0").pub);
  EXPECT_NE(key_from_seed("hospital-0").pub.y,
            key_from_seed("hospital-1").pub.y);
}

TEST(Schnorr, AddressDerivation) {
  const PrivateKey key = key_from_seed("addr-test");
  const Address a = address_of(key.pub);
  EXPECT_FALSE(a.is_zero());
  EXPECT_EQ(a, address_of(key.pub));
  EXPECT_EQ(to_hex(a).size(), 40u);
}

class SchnorrSweep : public ::testing::TestWithParam<int> {};

TEST_P(SchnorrSweep, ManyKeysManyMessages) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const PrivateKey key = generate_key(rng);
  for (int i = 0; i < 20; ++i) {
    const Bytes msg = rng.bytes(1 + rng.uniform(64));
    const Signature sig = sign(key, BytesView(msg));
    EXPECT_TRUE(verify(key.pub, BytesView(msg), sig));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchnorrSweep, ::testing::Range(1, 9));

// --- ChaCha20 ---

TEST(ChaCha20, Rfc8439Vector) {
  // RFC 8439 §2.4.2 test vector.
  ChaChaKey key;
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(i);
  ChaChaNonce nonce{};
  nonce[3] = 0x00;
  nonce[7] = 0x4a;
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  const Bytes ciphertext =
      chacha20_xor(key, nonce, str_bytes(plaintext), 1);
  EXPECT_EQ(mc::to_hex(BytesView(ciphertext.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
}

TEST(ChaCha20, XorIsInvolution) {
  Rng rng(3);
  const ChaChaKey key = key_from_hash(sha256("key"));
  const ChaChaNonce nonce = nonce_from_counter(7);
  const Bytes plaintext = rng.bytes(300);
  const Bytes ciphertext = chacha20_xor(key, nonce, BytesView(plaintext));
  EXPECT_NE(ciphertext, plaintext);
  EXPECT_EQ(chacha20_xor(key, nonce, BytesView(ciphertext)), plaintext);
}

TEST(ChaCha20, SealOpenRoundTrip) {
  const ChaChaKey key = key_from_hash(sha256("session"));
  const Bytes msg = to_bytes("encrypted EMR payload");
  const SealedBox box = seal(key, nonce_from_counter(1), BytesView(msg));
  const auto opened = open(key, box);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(ChaCha20, TamperedCiphertextRejected) {
  const ChaChaKey key = key_from_hash(sha256("session"));
  SealedBox box = seal(key, nonce_from_counter(2), str_bytes("records"));
  box.ciphertext[0] ^= 0x01;
  EXPECT_FALSE(open(key, box).has_value());
}

TEST(ChaCha20, WrongKeyRejected) {
  const ChaChaKey key = key_from_hash(sha256("right"));
  const SealedBox box = seal(key, nonce_from_counter(3), str_bytes("data"));
  EXPECT_FALSE(open(key_from_hash(sha256("wrong")), box).has_value());
}

}  // namespace
}  // namespace mc::crypto
