// Parallel block execution (DESIGN.md §13): the wave scheduler must be
// bit-identical to sequential execution — same state digests, same
// contract-store digests, same receipts, same accept/reject verdicts —
// on transfer chains, contract chains, randomized mixed workloads and
// the abort/re-run path where a recorded dynamic footprint goes stale.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "audit/chain_auditor.hpp"
#include "chain/execution/executor.hpp"
#include "chain/node.hpp"
#include "chain/vm_hook.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "vm/assembler.hpp"

namespace mc::chain {
namespace {

// Counter contract (bounded footprint): selector 1 increments storage[1]
// by calldata[1], selector 2 returns it. Distinct deployments write
// disjoint cells, so calls to different counters parallelize.
const char* kCounterSource = R"(
PUSH 0
CALLDATALOAD
PUSH 1
EQ
JUMPI @add
PUSH 1
SLOAD
RETURN 1
add:
PUSH 1
CALLDATALOAD
PUSH 1
SLOAD
ADD
PUSH 1
SSTORE
STOP
)";

// Slot writer: storage[calldata[0]] = calldata[1]. The key is
// param-derived — the pre-symbolic analyzer reported ⊤ for it, but the
// concretizer now evaluates the symbolic key against each tx's calldata
// to an exact cell, so these calls schedule without recorded hints.
const char* kSlotWriterSource = R"(
PUSH 1
CALLDATALOAD
PUSH 0
CALLDATALOAD
SSTORE
STOP
)";

// Indirect writer (genuinely unbounded): storage[storage[calldata[0]]] =
// calldata[1]. The key is loaded from storage, which the symbolic domain
// has no model for, so even the concretizer refuses and the scheduler
// leans on recorded dynamic footprints — the last rung of the ladder.
const char* kIndirectWriterSource = R"(
PUSH 1
CALLDATALOAD
PUSH 0
CALLDATALOAD
SLOAD
SSTORE
STOP
)";

// Branchy contract whose *read set* depends on prior state — the one
// shape that can make a recorded footprint under-approximate:
//   selector 1: storage[1] = calldata[1]            (mode flag)
//   selector 2: storage[0] = calldata[1]            (indirect base)
//   otherwise:  mode == 0 → storage[2] = 1          (plain path)
//               mode != 0 → storage[storage[0]] = 1 (indirect path)
const char* kBranchySource = R"(
PUSH 0
CALLDATALOAD
PUSH 1
EQ
JUMPI @setmode
PUSH 0
CALLDATALOAD
PUSH 2
EQ
JUMPI @setbase
PUSH 1
SLOAD
JUMPI @indirect
PUSH 1
PUSH 2
SSTORE
STOP
indirect:
PUSH 1
PUSH 0
SLOAD
SSTORE
STOP
setmode:
PUSH 1
CALLDATALOAD
PUSH 1
SSTORE
STOP
setbase:
PUSH 1
CALLDATALOAD
PUSH 0
SSTORE
STOP
)";

std::vector<crypto::PrivateKey> make_users(std::size_t n) {
  std::vector<crypto::PrivateKey> users;
  for (std::size_t i = 0; i < n; ++i)
    users.push_back(crypto::key_from_seed("exec-user-" + std::to_string(i)));
  return users;
}

ChainParams params_with_premine(const std::vector<crypto::PrivateKey>& users) {
  ChainParams params;
  params.consensus = ConsensusKind::Pbft;
  for (const auto& user : users)
    params.premine.push_back({crypto::address_of(user.pub), 1'000'000'000});
  return params;
}

Transaction make_anchor_tx(const crypto::PrivateKey& from,
                           const Hash256& digest, std::uint64_t nonce) {
  Transaction tx;
  tx.kind = TxKind::Anchor;
  tx.nonce = nonce;
  tx.gas_limit = 50'000;
  tx.payload = Bytes(digest.data.begin(), digest.data.end());
  tx.sign_with(from);
  return tx;
}

/// One full node with its own contract stack.
struct Replica {
  vm::ContractStore store;
  VmExecutionHook hook{store};
  Node node;

  Replica(const ChainParams& params, const Block& genesis,
          const std::string& who)
      : node(crypto::key_from_seed(who), params, genesis, &hook) {}
};

/// Builder proposes; a sequential and a wave-parallel replica both apply
/// every block; convergence is asserted digest-for-digest.
struct ParallelRig {
  std::vector<crypto::PrivateKey> users = make_users(8);
  ChainParams params = params_with_premine(users);
  Block genesis = make_genesis("exec-chain", ~0ULL);
  ThreadPool pool{4};
  Replica builder{params, genesis, "builder"};
  Replica seq{params, genesis, "seq-replica"};
  Replica par{params, genesis, "par-replica"};
  std::vector<std::uint64_t> nonces = std::vector<std::uint64_t>(8, 0);
  std::vector<Block> chain{genesis};

  ParallelRig() {
    exec::ExecutionConfig cfg;
    cfg.workers = 4;
    cfg.pool = &pool;
    par.node.set_execution(cfg);
  }

  std::uint64_t next_nonce(std::size_t user) { return nonces[user]++; }

  Block commit(const std::vector<Transaction>& txs, std::uint64_t time_ms) {
    for (const auto& tx : txs) EXPECT_TRUE(builder.node.submit(tx));
    const Block block = builder.node.propose(time_ms);
    EXPECT_EQ(block.txs.size(), txs.size());
    EXPECT_EQ(builder.node.receive(block), BlockVerdict::Accepted);
    EXPECT_EQ(seq.node.receive(block), BlockVerdict::Accepted);
    EXPECT_EQ(par.node.receive(block), BlockVerdict::Accepted);
    chain.push_back(block);
    return block;
  }

  void expect_converged() {
    EXPECT_EQ(seq.node.height(), par.node.height());
    EXPECT_EQ(seq.node.state().digest(), par.node.state().digest());
    EXPECT_EQ(seq.store.digest(), par.store.digest());
    EXPECT_EQ(seq.node.counters().txs_executed,
              par.node.counters().txs_executed);
    EXPECT_EQ(seq.node.counters().gas_executed,
              par.node.counters().gas_executed);
  }
};

/// A VmExecutionHook that owns its ContractStore, for HookFactory use.
/// The store lives in a base constructed before VmExecutionHook.
struct StoreHolder {
  vm::ContractStore owned_store;
};
struct OwningVmHook : StoreHolder, VmExecutionHook {
  OwningVmHook() : VmExecutionHook(owned_store) {}
};

// --- ledger-only convergence -----------------------------------------------

TEST(ParallelExec, TransferChainMatchesSequential) {
  ParallelRig rig;
  // Five blocks mixing disjoint sender/recipient pairs (wide waves) with
  // overlapping recipients and repeat senders (DAG edges).
  for (int b = 0; b < 5; ++b) {
    std::vector<Transaction> txs;
    for (std::size_t u = 0; u < rig.users.size(); ++u) {
      const std::size_t to = (u + 1 + static_cast<std::size_t>(b)) % 8;
      txs.push_back(make_transfer(rig.users[u],
                                  crypto::address_of(rig.users[to].pub),
                                  100 + static_cast<Amount>(b),
                                  rig.next_nonce(u)));
    }
    // Two extra txs from user 0 — a same-sender chain inside the block.
    txs.push_back(make_transfer(rig.users[0],
                                crypto::address_of(rig.users[3].pub), 7,
                                rig.next_nonce(0)));
    txs.push_back(make_transfer(rig.users[0],
                                crypto::address_of(rig.users[4].pub), 9,
                                rig.next_nonce(0)));
    rig.commit(txs, 1'000 * (b + 1));
  }
  rig.expect_converged();

  const exec::BlockExecMetrics& m = rig.par.node.executor().metrics();
  EXPECT_GT(m.parallel_txs, 0u);
  EXPECT_GT(m.waves, 0u);
  EXPECT_GT(m.dag_edges, 0u);  // the same-sender chain forces edges
  // The sequential replica never entered the wave path.
  EXPECT_EQ(rig.seq.node.executor().metrics().parallel_txs, 0u);
}

// --- contract convergence ---------------------------------------------------

TEST(ParallelExec, ContractChainMatchesSequential) {
  ParallelRig rig;
  // Three counter deployments (deploys serialize via the registry cell).
  std::vector<Transaction> deploys;
  for (std::size_t u = 0; u < 3; ++u)
    deploys.push_back(make_deploy(rig.users[u], vm::assemble(kCounterSource),
                                  rig.next_nonce(u)));
  rig.commit(deploys, 1'000);

  std::vector<vm::Word> counters;
  for (std::size_t u = 0; u < 3; ++u)
    counters.push_back(*rig.builder.hook.contract_id_of(deploys[u].id()));

  // Blocks of calls: distinct senders to distinct counters speculate in
  // one wave; repeat calls to the same counter serialize across waves.
  for (int b = 0; b < 4; ++b) {
    std::vector<Transaction> txs;
    for (std::size_t u = 0; u < 6; ++u)
      txs.push_back(make_call(rig.users[u], counters[u % 3],
                              {1, static_cast<vm::Word>(u + 1)},
                              rig.next_nonce(u)));
    txs.push_back(make_transfer(rig.users[6],
                                crypto::address_of(rig.users[7].pub), 11,
                                rig.next_nonce(6)));
    rig.commit(txs, 2'000 + 1'000 * b);
  }
  rig.expect_converged();

  // Speculation actually committed from waves (not all commit-slot runs).
  EXPECT_GT(rig.par.node.executor().metrics().parallel_txs, 0u);
  // And the counters hold the sequential totals on the parallel replica.
  for (std::size_t c = 0; c < 3; ++c) {
    const auto* dc = rig.par.store.contract(counters[c]);
    ASSERT_NE(dc, nullptr);
    EXPECT_EQ(dc->storage.at(1),
              rig.seq.store.contract(counters[c])->storage.at(1));
  }
}

TEST(ParallelExec, DynamicFootprintsRecordedForUnboundedCalls) {
  ParallelRig rig;
  const Transaction deploy = make_deploy(
      rig.users[0], vm::assemble(kIndirectWriterSource), rig.next_nonce(0));
  const Transaction filler0 = make_transfer(
      rig.users[6], crypto::address_of(rig.users[7].pub), 5,
      rig.next_nonce(6));
  rig.commit({deploy, filler0}, 1'000);
  const vm::Word writer = *rig.builder.hook.contract_id_of(deploy.id());

  // ⊤-footprint calls: each records its first-run cell set at commit.
  for (int b = 0; b < 2; ++b) {
    std::vector<Transaction> txs;
    for (std::size_t u = 1; u < 5; ++u)
      txs.push_back(make_call(rig.users[u], writer,
                              {static_cast<vm::Word>(u), vm::Word{1}},
                              rig.next_nonce(u)));
    rig.commit(txs, 2'000 + 1'000 * b);
  }
  rig.expect_converged();
  EXPECT_GT(rig.par.node.executor().footprints().recorded_count(), 0u);
  // ⊤ txs serialize: they execute at their commit slot, not in waves.
  EXPECT_GT(rig.par.node.executor().metrics().sequential_txs, 0u);
}

// --- divergence on invalid blocks ------------------------------------------

TEST(ParallelExec, InvalidBlockRejectedIdentically) {
  ParallelRig rig;
  std::vector<Transaction> txs;
  for (std::size_t u = 0; u < 4; ++u)
    txs.push_back(make_transfer(rig.users[u],
                                crypto::address_of(rig.users[u + 4].pub), 50,
                                rig.next_nonce(u)));
  rig.commit(txs, 1'000);
  const Hash256 seq_digest = rig.seq.node.state().digest();

  // Hand-craft a block with an overspending tx in the middle: both
  // execution modes must reject it and roll back completely.
  Block bad = rig.builder.node.propose(2'000);
  bad.txs.clear();
  for (std::size_t u = 0; u < 3; ++u)
    bad.txs.push_back(make_transfer(rig.users[u],
                                    crypto::address_of(rig.users[5].pub), 10,
                                    rig.nonces[u]));
  bad.txs.insert(bad.txs.begin() + 1,
                 make_transfer(rig.users[7], crypto::address_of(
                                   rig.users[0].pub),
                               Amount{5'000'000'000}, rig.nonces[7]));
  bad.header.tx_root = bad.compute_tx_root();
  EXPECT_EQ(rig.seq.node.receive(bad), BlockVerdict::Invalid);
  EXPECT_EQ(rig.par.node.receive(bad), BlockVerdict::Invalid);
  EXPECT_EQ(rig.seq.node.height(), 1u);
  EXPECT_EQ(rig.par.node.height(), 1u);
  EXPECT_EQ(rig.seq.node.state().digest(), seq_digest);
  EXPECT_EQ(rig.par.node.state().digest(), seq_digest);
}

// --- abort/re-run: a recorded footprint that goes stale ---------------------

// A dynamic footprint is recorded from one concrete run and reused as a
// scheduling hint on any later execution of the same transaction (reorg
// replays, audits). When the pre-state differs between record time and
// replay time, the hint can under-approximate — and commit-slot
// validation must catch it. Two chains run through ONE BlockExecutor
// (the provider cache persists; the contract store carries over):
//
//   Chain A (recording, mode off): T_probe takes the PLAIN path, so its
//   recorded set is {read (D,1), write (D,2)} — no (D,0). T_base's
//   selector-2 summary concretizes to {write (D,0)} statically.
//   Chain B (stale replay, mode on, base moved to 3): [T_base, T_probe]
//   in one block look independent per those footprints, so both
//   speculate in one wave. T_probe actually takes the INDIRECT path and
//   reads storage[0] = 3, which T_base rewrites to 7 at its commit slot:
//   stale observation → abort → sequential re-run → storage[7] = 1,
//   exactly the sequential outcome.
TEST(ParallelExec, StaleRecordedFootprintAbortsAndRerunsIdentically) {
  const auto users = make_users(8);
  const ChainParams params = params_with_premine(users);
  ThreadPool pool{4};

  const auto fresh_state = [&] {
    WorldState state;
    for (const auto& [addr, amount] : params.premine)
      state.credit(addr, amount);
    return state;
  };
  const auto block_at = [](Height h, std::vector<Transaction> txs) {
    Block b;
    b.header.height = h;
    b.txs = std::move(txs);
    return b;
  };

  struct Stack {
    vm::ContractStore store;
    VmExecutionHook hook{store};
    exec::BlockExecutor executor;
    std::vector<TxReceipt> receipts;

    Stack(const ChainParams& params, const exec::ExecutionConfig& cfg)
        : executor(params, &hook) {
      executor.set_config(cfg);
    }

    void apply(WorldState& state, const Block& block) {
      const exec::BlockExecResult res =
          executor.execute_block(state, block, &receipts);
      ASSERT_TRUE(res.ok) << res.error;
    }
  };

  exec::ExecutionConfig par_cfg;
  par_cfg.workers = 4;
  par_cfg.pool = &pool;
  Stack par(params, par_cfg);
  Stack seq(params, exec::ExecutionConfig{});

  std::vector<Block> chain_a;
  std::vector<Block> chain_b;

  const Transaction deploy =
      make_deploy(users[0], vm::assemble(kBranchySource), 0);
  // Discover the contract id on a scratch stack before building the call
  // transactions (the real runs see the same deploy as their first tx,
  // so both stores assign the same id).
  vm::Word id = 0;
  {
    vm::ContractStore probe_store;
    VmExecutionHook probe_hook(probe_store);
    exec::BlockExecutor probe_exec(params, &probe_hook);
    WorldState state = fresh_state();
    const exec::BlockExecResult res =
        probe_exec.execute_block(state, block_at(1, {deploy}));
    ASSERT_TRUE(res.ok) << res.error;
    const auto discovered = probe_hook.contract_id_of(deploy.id());
    ASSERT_TRUE(discovered.has_value());
    id = *discovered;
  }

  const Transaction t_mode = make_call(users[1], id, {1, 1}, 0);   // mode on
  const Transaction t_base = make_call(users[2], id, {2, 7}, 0);   // base = 7
  const Transaction t_probe = make_call(users[3], id, {3}, 0);     // branchy
  const Transaction t_base2 = make_call(users[4], id, {2, 3}, 0);  // base = 3
  const auto filler = [&](std::size_t user, std::uint64_t nonce) {
    return make_transfer(users[user], crypto::address_of(users[5].pub), 5,
                         nonce);
  };

  // Chain A: deploy, record T_base and T_probe with the mode flag off.
  chain_a.push_back(block_at(1, {deploy, filler(6, 0)}));
  chain_a.push_back(block_at(2, {t_base, filler(7, 0)}));
  chain_a.push_back(block_at(3, {t_probe, filler(6, 1)}));
  // Chain B (fresh ledger, same store): mode on, base to 3, stale pair.
  chain_b.push_back(block_at(1, {t_mode, filler(7, 0)}));
  chain_b.push_back(block_at(2, {t_base2, filler(6, 0)}));
  chain_b.push_back(block_at(3, {t_base, t_probe}));

  for (Stack* stack : {&par, &seq}) {
    WorldState state_a = fresh_state();
    for (const Block& b : chain_a) stack->apply(state_a, b);
    WorldState state_b = fresh_state();
    for (const Block& b : chain_b) stack->apply(state_b, b);
    if (testing::Test::HasFatalFailure()) return;
    if (stack == &par) {
      // T_probe's default path reads a storage-derived key, so it is the
      // one call the concretizer refuses; chain A recorded it. (T_base
      // hits selector 2, whose symbolic summary is exact — it no longer
      // needs a recorded hint.)
      EXPECT_GE(stack->executor.footprints().recorded_count(), 1u);
      // …and the stale pair produced exactly one abort + re-run.
      EXPECT_EQ(stack->executor.metrics().aborts, 1u);
      EXPECT_EQ(stack->executor.metrics().reruns, 1u);
    }
  }

  // Bit-identical outcome despite the abort.
  EXPECT_EQ(par.store.digest(), seq.store.digest());
  ASSERT_EQ(par.receipts.size(), seq.receipts.size());
  for (std::size_t k = 0; k < par.receipts.size(); ++k) {
    EXPECT_EQ(par.receipts[k].id, seq.receipts[k].id);
    EXPECT_EQ(par.receipts[k].gas_used, seq.receipts[k].gas_used);
    EXPECT_EQ(par.receipts[k].index, seq.receipts[k].index);
  }
  // The re-run took the indirect path; the aborted speculative write to
  // storage[3] never leaked into the store.
  const vm::DeployedContract* dc = par.store.contract(id);
  ASSERT_NE(dc, nullptr);
  EXPECT_EQ(dc->storage.at(0), 7u);
  EXPECT_EQ(dc->storage.at(1), 1u);
  EXPECT_EQ(dc->storage.at(7), 1u);
  EXPECT_EQ(dc->storage.count(3), 0u);
}

// --- randomized mixed workload, gated by the auditor ------------------------

TEST(ParallelExec, AuditorPassesRandomizedMixedWorkload) {
  ParallelRig rig;
  Rng rng(0x9a11e1ULL);

  // Contracts: two counters (statically bounded), one slot writer
  // (param-keyed, bounded via concretization), one indirect writer
  // (storage-derived key: the genuine ⊤/recorded path).
  const Transaction d0 =
      make_deploy(rig.users[0], vm::assemble(kCounterSource),
                  rig.next_nonce(0));
  const Transaction d1 =
      make_deploy(rig.users[1], vm::assemble(kCounterSource),
                  rig.next_nonce(1));
  const Transaction d2 =
      make_deploy(rig.users[2], vm::assemble(kSlotWriterSource),
                  rig.next_nonce(2));
  const Transaction d3 =
      make_deploy(rig.users[3], vm::assemble(kIndirectWriterSource),
                  rig.next_nonce(3));
  rig.commit({d0, d1, d2, d3}, 1'000);
  const std::vector<vm::Word> contracts = {
      *rig.builder.hook.contract_id_of(d0.id()),
      *rig.builder.hook.contract_id_of(d1.id()),
      *rig.builder.hook.contract_id_of(d2.id()),
      *rig.builder.hook.contract_id_of(d3.id())};

  for (int b = 0; b < 6; ++b) {
    std::vector<Transaction> txs;
    const std::size_t count = 6 + rng.uniform(6);
    for (std::size_t t = 0; t < count; ++t) {
      const std::size_t u = rng.uniform(rig.users.size());
      switch (rng.uniform(5)) {
        case 0: {  // transfer, half the time into a hot account
          const std::size_t to = rng.bernoulli(0.5) ? 0 : rng.uniform(8);
          txs.push_back(make_transfer(
              rig.users[u], crypto::address_of(rig.users[to].pub),
              1 + rng.uniform(500), rig.next_nonce(u)));
          break;
        }
        case 1:  // counter increment
          txs.push_back(make_call(rig.users[u],
                                  contracts[rng.uniform(2)],
                                  {1, 1 + rng.uniform(9)},
                                  rig.next_nonce(u)));
          break;
        case 2:  // concretized slot write; value 0 exercises the erase path
          txs.push_back(make_call(rig.users[u], contracts[2],
                                  {rng.uniform(5), rng.uniform(3)},
                                  rig.next_nonce(u)));
          break;
        case 3:  // ⊤ indirect write: storage-derived key, recorded path
          txs.push_back(make_call(rig.users[u], contracts[3],
                                  {rng.uniform(5), rng.uniform(3)},
                                  rig.next_nonce(u)));
          break;
        default: {  // anchor
          const Hash256 digest = crypto::sha256(
              "dataset-" + std::to_string(rng.uniform(1000)));
          txs.push_back(
              make_anchor_tx(rig.users[u], digest, rig.next_nonce(u)));
          break;
        }
      }
    }
    rig.commit(txs, 2'000 + 1'000 * b);
  }
  rig.expect_converged();

  // Independent double replay through the auditor: verdicts, ledger
  // digests, contract digests and receipts must all match.
  const audit::ChainAuditor auditor(rig.params);
  const audit::AuditReport report = auditor.audit_parallel_execution(
      rig.chain,
      [] {
        return std::unique_ptr<ExecutionHook>(new OwningVmHook());
      },
      rig.pool, /*workers=*/4);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.txs_replayed, 0u);
  EXPECT_EQ(report.count(audit::ViolationKind::ParallelExecutionDivergence),
            0u);
}

// --- concretizer ladder and recorded-cache eviction (PR 9) ------------------

// Two patients updating their own H(7, patient) record cells on ONE
// shared contract must not conflict once the per-selector summary is
// concretized; with the symbolic leg disabled the same calls degrade to
// the Param-as-unbounded baseline.
TEST(Footprints, SchedulingFootprintConcretizesPatientCells) {
  const char* src = R"(
    PUSH 0
    CALLDATALOAD
    PUSH 1
    EQ
    JUMPI @put
    REVERT
    put:
    PUSH 2
    CALLDATALOAD
    PUSH 7
    PUSH 3
    CALLDATALOAD
    HASHN 2
    SSTORE
    STOP
  )";
  vm::ContractStore store;
  // medchain-lint: allow(footprint-bypass) — test drives the gate directly
  const vm::Word id = store.deploy(vm::assemble(src), /*deployer=*/1,
                                   /*height=*/1);
  const auto users = make_users(2);

  const auto call_for = [&](std::size_t u, vm::Word patient) {
    return make_call(users[u], id, {1, 0, /*value=*/9, patient},
                     /*nonce=*/0);
  };
  const Transaction alice = call_for(0, 101);
  const Transaction bob = call_for(1, 202);

  const TxFootprint fa =
      exec::scheduling_footprint(alice, &store, /*height=*/2, true);
  const TxFootprint fb =
      exec::scheduling_footprint(bob, &store, /*height=*/2, true);
  EXPECT_FALSE(fa.unbounded);
  EXPECT_FALSE(fb.unbounded);
  EXPECT_FALSE(footprints_conflict(fa, fb));
  // Same patient from both senders: the concretized cells collide.
  const TxFootprint fb_same =
      exec::scheduling_footprint(call_for(1, 101), &store, 2, true);
  EXPECT_TRUE(footprints_conflict(fa, fb_same));

  // Symbolic leg off: back to the whole-kind Param baseline.
  EXPECT_TRUE(
      exec::scheduling_footprint(alice, &store, 2, false).unbounded);
  // No store at all: nothing to concretize against.
  EXPECT_TRUE(
      exec::scheduling_footprint(alice, nullptr, 2, true).unbounded);
}

// Regression: the recorded-set cache used to reset wholesale at the cap,
// dropping every hint at once. Now it evicts the oldest half FIFO — the
// newest hints must survive the cliff.
TEST(Footprints, RecordedCacheEvictsOldestHalfNotEverything) {
  exec::FootprintProvider provider(nullptr, /*max_recorded=*/4);
  const auto users = make_users(6);

  // Calls with no store to resolve against: ⊤ until recorded, so
  // footprint() answers straight from the dynamic cache.
  std::vector<Transaction> txs;
  for (std::size_t i = 0; i < 6; ++i)
    txs.push_back(make_call(users[i], /*contract=*/99, {1, 2},
                            /*nonce=*/0));
  vm::ExecTrace trace;
  trace.writes.insert(1);

  for (std::size_t i = 0; i < 4; ++i)
    provider.record(txs[i], /*contract_id=*/7, trace);
  EXPECT_EQ(provider.recorded_count(), 4u);

  // The 5th record crosses the cap: evict txs[0..1], keep txs[2..3].
  provider.record(txs[4], 7, trace);
  EXPECT_EQ(provider.recorded_count(), 3u);

  const auto recorded = [&](const Transaction& tx) {
    return !provider.footprint(tx).unbounded;
  };
  EXPECT_FALSE(recorded(txs[0]));
  EXPECT_FALSE(recorded(txs[1]));
  EXPECT_TRUE(recorded(txs[2]));
  EXPECT_TRUE(recorded(txs[3]));
  EXPECT_TRUE(recorded(txs[4]));

  // Re-recording an already-cached id must not duplicate its FIFO slot.
  provider.record(txs[2], 7, trace);
  EXPECT_EQ(provider.recorded_count(), 3u);
  provider.record(txs[5], 7, trace);
  EXPECT_EQ(provider.recorded_count(), 4u);
  EXPECT_TRUE(recorded(txs[2]));
}

TEST(ParallelExec, AuditorAgreesOnRejectedBlock) {
  // A chain whose final block is invalid: both replay modes must reject
  // it — agreement on failure is part of the determinism contract.
  ParallelRig rig;
  std::vector<Transaction> txs;
  for (std::size_t u = 0; u < 4; ++u)
    txs.push_back(make_transfer(rig.users[u],
                                crypto::address_of(rig.users[7].pub), 25,
                                rig.next_nonce(u)));
  rig.commit(txs, 1'000);

  Block bad = rig.builder.node.propose(2'000);
  bad.txs = {make_transfer(rig.users[0],
                           crypto::address_of(rig.users[1].pub), 10,
                           rig.nonces[0]),
             make_transfer(rig.users[5],
                           crypto::address_of(rig.users[6].pub),
                           Amount{9'000'000'000}, rig.nonces[5])};
  bad.header.tx_root = bad.compute_tx_root();
  std::vector<Block> chain = rig.chain;
  chain.push_back(bad);

  const audit::ChainAuditor auditor(rig.params);
  const audit::AuditReport report = auditor.audit_parallel_execution(
      chain,
      [] {
        return std::unique_ptr<ExecutionHook>(new OwningVmHook());
      },
      rig.pool, /*workers=*/4);
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace mc::chain
