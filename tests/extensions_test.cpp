// Tests for the paper's extension features: distributed transfer
// learning (§V research item), the data-quality service (§IV), and
// statistics-based site pruning (§IV/§V decomposition optimization).
#include <gtest/gtest.h>

#include <cmath>

#include "core/local_system.hpp"
#include "learn/distributed_transfer.hpp"
#include "med/generator.hpp"
#include "med/quality.hpp"

namespace mc {
namespace {

learn::DataSet cohort_dataset(std::size_t n, std::uint64_t seed,
                              double age_shift = 0) {
  med::CohortConfig config;
  config.patients = n;
  config.seed = seed;
  config.age_shift_years = age_shift;
  std::vector<med::CommonRecord> records;
  for (const auto& p : med::generate_cohort(config))
    records.push_back(med::to_common(p));
  return learn::dataset_from_records(records, learn::LabelKind::Stroke);
}

TEST(DistributedTransfer, FederatedPretrainingLearnsCoreFeatures) {
  std::vector<learn::DataSet> sites;
  for (int s = 0; s < 4; ++s) sites.push_back(cohort_dataset(600, 10 + s));
  const learn::DataSet core_test = cohort_dataset(600, 99);

  learn::DistributedTransferConfig config;
  config.pretrain.rounds = 20;
  config.pretrain.local_epochs = 2;
  config.pretrain.local_sgd.learning_rate = 0.3;

  learn::FederatedResult fed;
  const learn::Mlp core =
      learn::federated_pretrain(sites, core_test, config, &fed);
  EXPECT_GT(fed.history.back().test_auc, 0.7);
  EXPECT_EQ(core.hidden_dim(), config.hidden_dim);
}

TEST(DistributedTransfer, TransferBeatsScratchOnSmallShiftedTarget) {
  std::vector<learn::DataSet> sites;
  for (int s = 0; s < 4; ++s) sites.push_back(cohort_dataset(2'000, 20 + s));
  const learn::DataSet core_test = cohort_dataset(500, 98);

  learn::DataSet target = cohort_dataset(460, 77, /*age_shift=*/7);
  const auto [target_train, target_test] = target.split(60.0 / 460.0);

  learn::DistributedTransferConfig config;
  config.pretrain.rounds = 20;
  config.pretrain.local_epochs = 2;
  config.pretrain.local_sgd.learning_rate = 0.3;

  const auto outcome = learn::run_distributed_transfer(
      sites, core_test, target_train, target_test, config);
  EXPECT_GT(outcome.core_auc, 0.7);
  EXPECT_GT(outcome.transfer_auc, 0.6);
  EXPECT_GE(outcome.transfer_auc, outcome.scratch_auc - 0.05);
  // Federated pretraining moved parameters, not records. (The margin
  // widens with per-site data volume; records here are only 13 doubles.)
  EXPECT_LT(outcome.pretrain_bytes_moved,
            outcome.centralized_equivalent_bytes / 2);
}

TEST(Quality, CleanSyntheticCohortScoresHigh) {
  std::vector<med::CommonRecord> records;
  for (const auto& p : med::generate_cohort({.patients = 800, .seed = 3}))
    records.push_back(med::to_common(p));
  const med::QualityReport report = med::assess_quality(records);
  EXPECT_EQ(report.records, 800u);
  EXPECT_GT(report.score(), 0.95);
  for (const auto& fq : report.fields) {
    EXPECT_EQ(fq.missing, 0u) << fq.field;
    EXPECT_EQ(fq.out_of_range, 0u) << fq.field;
  }
}

TEST(Quality, DetectsInjectedUnitErrors) {
  std::vector<med::CommonRecord> records;
  for (const auto& p : med::generate_cohort({.patients = 1'000, .seed = 4}))
    records.push_back(med::to_common(p));
  // Classic bug: glucose stored in mmol/L (values ~5) where the CDF
  // expects mg/dL (values ~100): inject the inverse factor.
  med::inject_unit_errors(records, "glucose", 1.0 / 18.02, 0.2, 9);

  const med::QualityReport report = med::assess_quality(records);
  const auto& glucose = report.fields[5];  // kFeatureNames order
  EXPECT_EQ(glucose.field, "glucose");
  EXPECT_NEAR(static_cast<double>(glucose.out_of_range) / 1'000.0, 0.2,
              0.04);
  // Most out-of-range values are recognizable as unit errors.
  EXPECT_GT(glucose.suspected_unit_errors, glucose.out_of_range / 2);
  EXPECT_LT(report.score(), 0.99);
}

TEST(Quality, CountsMissingFields) {
  std::vector<med::CommonRecord> records(10);
  for (auto& r : records) {
    r.age = 50;
    r.systolic_bp = std::numeric_limits<double>::quiet_NaN();
  }
  const med::QualityReport report = med::assess_quality(records);
  const auto& sbp = report.fields[3];
  EXPECT_EQ(sbp.missing, 10u);
  EXPECT_DOUBLE_EQ(sbp.completeness(), 0.0);
  EXPECT_EQ(report.clean_records, 0u);
}

TEST(Quality, FlagsStatisticalOutliers) {
  std::vector<med::CommonRecord> records;
  for (const auto& p : med::generate_cohort({.patients = 500, .seed = 5}))
    records.push_back(med::to_common(p));
  // One in-plausible-range but statistically absurd cholesterol reading.
  auto features = med::features_of(records[0]);
  features[4] = 440.0;  // within [80,450] bounds, far beyond 4 sigma
  med::set_features(records[0], features);
  const med::QualityReport report = med::assess_quality(records);
  EXPECT_GE(report.fields[4].outliers, 1u);
}

TEST(SitePruning, StatsReflectRecordsAndPruneDisjointQueries) {
  std::vector<med::CommonRecord> young;
  for (const auto& p : med::generate_cohort({.patients = 100, .seed = 6})) {
    med::CommonRecord r = med::to_common(p);
    auto features = med::features_of(r);
    features[0] = 30.0 + static_cast<double>(r.uid % 10);  // ages 30..39
    med::set_features(r, features);
    young.push_back(r);
  }
  const core::LocalSystem site("young-clinic", young);

  med::Query matching;
  matching.where = {{"age", 25, 50}};
  EXPECT_TRUE(site.can_match(matching));

  med::Query disjoint;
  disjoint.where = {{"age", 70, 120}};
  EXPECT_FALSE(site.can_match(disjoint));

  // Unknown fields never prune (conservative).
  med::Query unknown;
  unknown.where = {{"label_stroke", 0.5, 1.5}};
  EXPECT_TRUE(site.can_match(unknown));

  // Empty sites always prune.
  const core::LocalSystem empty("empty", {});
  EXPECT_FALSE(empty.can_match(matching));
}

}  // namespace
}  // namespace mc
