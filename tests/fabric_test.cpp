// Tuple-space compute fabric tests: TupleSpace lifecycle and commit
// rules, lease recovery under crashes and partitions, straggler
// speculation, granularity autotuning, and fabric-vs-static backends —
// every scenario deterministic and seed-replayable.
#include <gtest/gtest.h>

#include <vector>

#include "core/fabric/backend.hpp"
#include "core/fabric/fabric.hpp"
#include "core/fabric/tuple_space.hpp"
#include "sim/event_queue.hpp"
#include "sim/faults.hpp"

namespace mc::core::fabric {
namespace {

// ---------------------------------------------------------------------------
// TupleSpace: coordinator-side data structure.
// ---------------------------------------------------------------------------

TEST(TupleSpace, PutTakeCompleteLifecycle) {
  TupleSpace space;
  const TupleId id = space.put("t0", 10, 0, kNoNode, 0.0);
  EXPECT_FALSE(space.settled());
  EXPECT_EQ(space.read(id)->state, TupleState::Pending);

  const auto grant = space.take(/*worker=*/0, /*now=*/0.5);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->tuple.id, id);
  EXPECT_FALSE(grant->speculative);
  EXPECT_EQ(space.read(id)->state, TupleState::Leased);

  // Nothing else is takeable: the single tuple is leased, not speculative.
  EXPECT_FALSE(space.take(1, 0.6).has_value());

  const CommitResult result = space.complete(grant->lease, 0.8);
  EXPECT_TRUE(result.committed);
  EXPECT_FALSE(result.duplicate);
  EXPECT_DOUBLE_EQ(result.attempt_latency_s, 0.3);
  EXPECT_EQ(result.work, 10u);
  EXPECT_TRUE(space.settled());
  EXPECT_EQ(space.read(id)->state, TupleState::Done);
  EXPECT_EQ(space.read(id)->done_by, 0u);
  EXPECT_DOUBLE_EQ(space.last_settle_s(), 0.8);
  EXPECT_EQ(space.work_done(), space.work_put());
  EXPECT_EQ(space.stats().commits, 1u);
}

TEST(TupleSpace, TakePrefersDataHomeWithinAffinityWindow) {
  SpaceConfig config;
  config.affinity_window = 8;
  TupleSpace space(config);
  space.put("a", 1, 0, /*data_home=*/3, 0.0);
  space.put("b", 1, 0, /*data_home=*/7, 0.0);
  // Worker 7 skips the FIFO head because "b" lives on it...
  const auto grant = space.take(7, 0.1);
  ASSERT_TRUE(grant.has_value());
  EXPECT_EQ(grant->tuple.tag, "b");
  EXPECT_EQ(space.stats().local_grants, 1u);
  // ...and with a zero window, strict FIFO would have handed it "a".
  TupleSpace fifo(SpaceConfig{.affinity_window = 0});
  fifo.put("a", 1, 0, 3, 0.0);
  fifo.put("b", 1, 0, 7, 0.0);
  EXPECT_EQ(fifo.take(7, 0.1)->tuple.tag, "a");
}

TEST(TupleSpace, LeaseExpiryReissuesWithBackoffThenPoisons) {
  SpaceConfig config;
  config.lease_s = 1.0;
  config.reissue_budget = 2;
  config.backoff.backoff_base_s = 0.5;
  TupleSpace space(config);
  const TupleId id = space.put("t", 4, 0, kNoNode, 0.0);

  double now = 0.0;
  for (std::size_t round = 1; round <= config.reissue_budget; ++round) {
    const auto grant = space.take(0, now);
    ASSERT_TRUE(grant.has_value());
    now += 1.5;  // past the deadline
    EXPECT_EQ(space.expire_leases(now), 1u);
    const TupleRecord* record = space.read(id);
    EXPECT_EQ(record->state, TupleState::Pending);
    EXPECT_EQ(record->reissues, round);
    // Backoff gates the re-take.
    EXPECT_GT(record->not_before_s, now);
    EXPECT_FALSE(space.take(0, now).has_value());
    now = record->not_before_s;
  }

  // Budget exhausted: the next lost lease poisons the tuple.
  ASSERT_TRUE(space.take(0, now).has_value());
  now += 1.5;
  space.expire_leases(now);
  EXPECT_EQ(space.read(id)->state, TupleState::Poisoned);
  EXPECT_TRUE(space.settled());
  EXPECT_EQ(space.work_poisoned(), space.work_put());
  EXPECT_EQ(space.stats().poisoned, 1u);
  EXPECT_EQ(space.stats().reissues, config.reissue_budget);
}

// The lease-expiry-vs-slow-worker race: the original worker's result
// arrives after its lease expired and the tuple was re-issued to someone
// else. First result wins — exactly one commit, ever.
TEST(TupleSpace, SlowWorkerResultAfterExpiryCommitsExactlyOnce) {
  SpaceConfig config;
  config.lease_s = 1.0;
  config.backoff.backoff_base_s = 0.0;  // re-takeable immediately
  TupleSpace space(config);
  const TupleId id = space.put("t", 8, 0, kNoNode, 0.0);

  const auto slow = space.take(0, 0.0);
  ASSERT_TRUE(slow.has_value());
  space.expire_leases(2.0);  // slow worker presumed dead
  const auto retry = space.take(1, 2.0);
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(retry->tuple.id, id);

  // The presumed-dead worker was merely slow: its result still lands
  // first and commits, flagged as an expired-lease commit.
  const CommitResult first = space.complete(slow->lease, 2.5);
  EXPECT_TRUE(first.committed);
  EXPECT_EQ(space.read(id)->state, TupleState::Done);
  EXPECT_EQ(space.read(id)->done_by, 0u);
  EXPECT_TRUE(space.read(id)->committed_after_expiry);
  EXPECT_EQ(space.stats().expired_lease_commits, 1u);

  // The re-issued twin's result is dropped as a duplicate.
  const CommitResult second = space.complete(retry->lease, 3.0);
  EXPECT_FALSE(second.committed);
  EXPECT_TRUE(second.duplicate);
  EXPECT_EQ(space.stats().commits, 1u);
  EXPECT_EQ(space.stats().duplicate_completions, 1u);
  EXPECT_EQ(space.work_done(), space.work_put());
  EXPECT_TRUE(space.settled());
}

TEST(TupleSpace, SpeculativeDuplicateFirstResultWins) {
  SpaceConfig config;
  config.max_leases = 2;
  TupleSpace space(config);
  const TupleId id = space.put("t", 2, 0, kNoNode, 0.0);
  const auto primary = space.take(0, 0.0);
  ASSERT_TRUE(primary.has_value());

  space.mark_speculative(id);
  // The straggling primary holder never gets its own duplicate.
  EXPECT_FALSE(space.take(0, 0.1).has_value());
  const auto duplicate = space.take(1, 0.2);
  ASSERT_TRUE(duplicate.has_value());
  EXPECT_TRUE(duplicate->speculative);
  // max_leases reached: no third copy.
  EXPECT_FALSE(space.take(2, 0.3).has_value());

  const CommitResult fast = space.complete(duplicate->lease, 0.5);
  EXPECT_TRUE(fast.committed);
  EXPECT_EQ(space.stats().speculative_wins, 1u);
  const CommitResult late = space.complete(primary->lease, 4.0);
  EXPECT_TRUE(late.duplicate);
  EXPECT_EQ(space.stats().commits, 1u);
  EXPECT_TRUE(space.settled());
}

TEST(TupleSpace, RevokeWorkerReclaimsAllItsLeases) {
  SpaceConfig config;
  config.backoff.backoff_base_s = 0.0;
  TupleSpace space(config);
  space.put("a", 1, 0, kNoNode, 0.0);
  space.put("b", 1, 0, kNoNode, 0.0);
  ASSERT_TRUE(space.take(5, 0.0).has_value());
  ASSERT_TRUE(space.take(5, 0.0).has_value());
  EXPECT_EQ(space.revoke_worker(5, 0.5), 2u);
  EXPECT_EQ(space.stats().revocations, 2u);
  EXPECT_EQ(space.stats().reissues, 2u);
  // Both tuples are back in the space for someone healthier.
  EXPECT_TRUE(space.take(6, 0.6).has_value());
  EXPECT_TRUE(space.take(7, 0.6).has_value());
}

TEST(TupleSpace, SplitAndMergeConserveWorkExactly) {
  TupleSpace space;
  const TupleId fat = space.put("fat", 101, 1000, 2, 0.0);
  space.put("t1", 3, 0, kNoNode, 0.0);
  space.put("t2", 5, 0, kNoNode, 0.0);
  const std::uint64_t put = space.work_put();

  ASSERT_TRUE(space.split(fat, /*min_work=*/10, 0.1));
  EXPECT_EQ(space.read(fat)->state, TupleState::Replaced);
  const auto merged = space.merge(1, 2, 0.2);
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(space.read(*merged)->tuple.work, 8u);
  EXPECT_EQ(space.stats().splits, 1u);
  EXPECT_EQ(space.stats().merges, 1u);

  // Drain: three leaf tuples (fat/a, fat/b, merged) remain.
  std::size_t drained = 0;
  double now = 0.3;
  while (auto grant = space.take(0, now)) {
    EXPECT_TRUE(space.complete(grant->lease, now + 0.1).committed);
    now += 0.2;
    ++drained;
  }
  EXPECT_EQ(drained, 3u);
  EXPECT_TRUE(space.settled());
  EXPECT_EQ(space.work_put(), put);          // derived puts don't inflate
  EXPECT_EQ(space.work_done(), put);         // ...and the units all landed
  // A leased tuple refuses to split or merge.
  const TupleId late = space.put("late", 40, 0, kNoNode, now);
  ASSERT_TRUE(space.take(0, now).has_value());
  EXPECT_FALSE(space.split(late, 1, now));
  EXPECT_FALSE(space.merge(late, late, now).has_value());
}

// ---------------------------------------------------------------------------
// ComputeFabric: the full event-driven runtime.
// ---------------------------------------------------------------------------

FabricConfig small_fleet() {
  FabricConfig config;
  config.workers = 8;
  config.seed = 0x51;
  config.worker_speed = 1e9;
  config.sim_limit_s = 120;
  return config;
}

void submit_batch(ComputeFabric& fabric, std::size_t n,
                  std::uint64_t work = 10'000'000) {
  for (std::size_t i = 0; i < n; ++i)
    fabric.submit("task-" + std::to_string(i), work, 0,
                  static_cast<NodeId>(i % fabric.config().workers));
}

TEST(ComputeFabric, HealthyFleetSettlesEverythingAndReplays) {
  const FabricConfig config = small_fleet();
  auto run_once = [&config] {
    ComputeFabric fabric(config);
    submit_batch(fabric, 200);
    return fabric.run();
  };
  const FabricReport first = run_once();
  EXPECT_TRUE(first.settled);
  EXPECT_EQ(first.tuples, 200u);
  EXPECT_EQ(first.done, 200u);
  EXPECT_EQ(first.poisoned, 0u);
  EXPECT_EQ(first.space.commits, 200u);
  EXPECT_EQ(first.work_done, first.work_put);
  EXPECT_GT(first.makespan_s, 0.0);
  EXPECT_GT(first.locality(), 0.0);

  // Same seed, same report — bit for bit.
  const FabricReport second = run_once();
  EXPECT_EQ(first.fingerprint(), second.fingerprint());
  // A different seed shuffles jitter and wire order: different record.
  FabricConfig other = config;
  other.seed = 0x52;
  ComputeFabric fabric(other);
  submit_batch(fabric, 200);
  EXPECT_NE(first.fingerprint(), fabric.run().fingerprint());
}

// Acceptance headline: a seeded crash schedule kills 25% of the fleet
// mid-run; the fabric completes 100% of tuples with zero lost and zero
// double-committed results.
TEST(ComputeFabric, QuarterFleetCrashMidRunLosesNothing) {
  FabricConfig config = small_fleet();
  config.space.lease_s = 0.5;
  config.faults.crash(0, 0.3, 5.0).crash(1, 0.35, 5.0);  // 2 of 8 = 25%
  ComputeFabric fabric(config);
  submit_batch(fabric, 800);
  const FabricReport report = fabric.run();

  EXPECT_TRUE(report.settled);
  EXPECT_EQ(report.done, report.tuples);  // 100% completed...
  EXPECT_EQ(report.poisoned, 0u);         // ...nothing poisoned...
  EXPECT_EQ(report.work_done, report.work_put);  // ...zero units lost
  EXPECT_EQ(report.space.commits, static_cast<std::uint64_t>(report.done));
  EXPECT_EQ(report.worker_crashes, 2u);
  EXPECT_EQ(report.worker_restarts, 2u);
  // The crash actually bit: leases were reclaimed and tuples re-issued.
  EXPECT_GT(report.space.reissues, 0u);
  // Replays seed-identically even under faults.
  ComputeFabric again(config);
  submit_batch(again, 800);
  EXPECT_EQ(report.fingerprint(), again.run().fingerprint());
}

TEST(ComputeFabric, AllWorkersDieAndRestartMidRun) {
  FabricConfig config = small_fleet();
  config.workers = 4;
  config.space.lease_s = 0.5;
  for (NodeId w = 0; w < 4; ++w) config.faults.crash(w, 0.2, 3.0);
  ComputeFabric fabric(config);
  submit_batch(fabric, 100);
  const FabricReport report = fabric.run();
  EXPECT_TRUE(report.settled);
  EXPECT_EQ(report.done, 100u);
  EXPECT_EQ(report.worker_crashes, 4u);
  EXPECT_EQ(report.worker_restarts, 4u);
  EXPECT_GT(report.makespan_s, 3.0);  // nothing could finish before revival
  EXPECT_EQ(report.work_done, report.work_put);
}

// "Leader of nothing": the coordinator starts with every worker already
// dead — the space just holds the work until someone shows up.
TEST(ComputeFabric, StartsWithWholeFleetDownAndRecovers) {
  FabricConfig config = small_fleet();
  config.workers = 4;
  for (NodeId w = 0; w < 4; ++w) config.faults.crash(w, 0.0, 2.0);
  ComputeFabric fabric(config);
  submit_batch(fabric, 50);
  const FabricReport report = fabric.run();
  EXPECT_TRUE(report.settled);
  EXPECT_EQ(report.done, 50u);
  EXPECT_EQ(report.poisoned, 0u);
  EXPECT_GT(report.makespan_s, 2.0);
  // No lease ever existed before the restarts, so nothing was re-issued.
  EXPECT_EQ(report.space.lease_expiries, 0u);
}

TEST(ComputeFabric, SpeculationBeatsStragglersEndToEnd) {
  FabricConfig config = small_fleet();
  config.straggler_frac = 0.3;  // ~30% of the fleet runs 20× slower
  config.straggler_slowdown = 20.0;
  config.space.lease_s = 30.0;  // expiry must NOT be what rescues the tail

  auto run_with = [&config](bool speculation) {
    FabricConfig c = config;
    c.speculation = speculation;
    ComputeFabric fabric(c);
    // Paced arrivals below fleet capacity, so latency measures service
    // time (straggler tax included), not backlog drain.
    for (std::size_t i = 0; i < 200; ++i)
      fabric.submit("task-" + std::to_string(i), 50'000'000, 0,
                    static_cast<NodeId>(i % c.workers),
                    static_cast<double>(i) * 0.01);
    return fabric.run();
  };
  const FabricReport with = run_with(true);
  const FabricReport without = run_with(false);
  ASSERT_TRUE(with.settled);
  ASSERT_TRUE(without.settled);
  EXPECT_EQ(with.done, 200u);
  EXPECT_EQ(without.done, 200u);
  // Speculative duplicates won tuples off the stragglers...
  EXPECT_GT(with.speculation_marks, 0u);
  EXPECT_GT(with.space.speculative_wins, 0u);
  // ...and both the tail and the makespan improved.
  EXPECT_LT(with.makespan_s, without.makespan_s);
  EXPECT_LT(with.p99_latency_s, without.p99_latency_s);
}

TEST(ComputeFabric, HeartbeatStarvationRecoversFasterThanLeaseDeadline) {
  FabricConfig config = small_fleet();
  config.workers = 2;
  config.space.lease_s = 30.0;  // the deadline alone would stall the run
  config.heartbeat_timeout_s = 1.0;
  config.speculation = false;  // isolate the heartbeat recovery path
  config.faults.crash(0, 0.35);  // permanent: never restarts
  ComputeFabric fabric(config);
  submit_batch(fabric, 20, /*work=*/200'000'000);  // 0.2 s: crash mid-task
  const FabricReport report = fabric.run();
  EXPECT_TRUE(report.settled);
  EXPECT_EQ(report.done, 20u);
  EXPECT_GT(report.space.revocations, 0u);  // heartbeat path fired...
  EXPECT_LT(report.makespan_s, config.space.lease_s);  // ...before expiry
  EXPECT_EQ(report.work_done, report.work_put);
}

TEST(ComputeFabric, AutotuneSplitsCoarseAndMergesFineTuples) {
  FabricConfig config = small_fleet();
  config.workers = 4;
  config.autotune = true;
  config.target_latency_s = 0.05;
  config.min_work = 1'000'000;
  config.max_work = 200'000'000;
  ComputeFabric fabric(config);
  // Calibration batch near the target, then a far-too-coarse tuple and a
  // cloud of far-too-fine ones.
  submit_batch(fabric, 30, /*work=*/40'000'000);
  fabric.submit("fat", 1'000'000'000, 0, kNoNode, 0.0);
  for (int i = 0; i < 40; ++i)
    fabric.submit("fine-" + std::to_string(i), 2'000'000, 0, kNoNode, 0.0);
  const FabricReport report = fabric.run();
  EXPECT_TRUE(report.settled);
  EXPECT_EQ(report.poisoned, 0u);
  EXPECT_GT(report.space.splits, 0u);
  EXPECT_GT(report.space.merges, 0u);
  EXPECT_GT(report.replaced, 0u);
  // Conservation holds across every split and merge.
  EXPECT_EQ(report.work_done, report.work_put);
}

// ---------------------------------------------------------------------------
// Backends: fabric vs the static MoveComputeScheduler plan.
// ---------------------------------------------------------------------------

std::vector<AnalyticsTask> batch_tasks(std::size_t n, std::size_t workers,
                                       std::uint64_t work = 10'000'000) {
  std::vector<AnalyticsTask> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    tasks.push_back(AnalyticsTask{"task-" + std::to_string(i), work, 0,
                                  static_cast<NodeId>(i % workers), 0.0});
  return tasks;
}

TEST(AnalyticsBackends, AgreeOnAHealthyHomogeneousFleet) {
  FleetConfig fleet;
  fleet.workers = 8;
  const auto tasks = batch_tasks(160, fleet.workers);
  StaticPlanBackend baseline(fleet);
  FabricBackend fabric(fleet);
  const AnalyticsReport s = baseline.run(tasks);
  const AnalyticsReport f = fabric.run(tasks);
  EXPECT_EQ(s.completed, 160u);
  EXPECT_EQ(f.completed, 160u);
  EXPECT_TRUE(s.all_completed());
  EXPECT_TRUE(f.all_completed());
  // Healthy and uniform: pull scheduling only pays the control-plane
  // overhead, so the two makespans land in the same ballpark.
  EXPECT_LT(f.makespan_s, 3.0 * s.makespan_s);
}

TEST(AnalyticsBackends, FabricBeatsStaticPlanThroughCrashWindow) {
  FleetConfig fleet;
  fleet.workers = 8;
  fleet.faults.crash(0, 0.1, 6.0).crash(1, 0.1, 6.0);
  FabricConfig tuning;
  tuning.space.lease_s = 0.5;
  const auto tasks = batch_tasks(400, fleet.workers);
  StaticPlanBackend baseline(fleet);
  FabricBackend fabric(fleet, tuning);
  const AnalyticsReport s = baseline.run(tasks);
  const AnalyticsReport f = fabric.run(tasks);

  // Static: the two crashed sites strand their queues until the heal, so
  // the makespan is pinned past it. Fabric: survivors absorb the work.
  EXPECT_TRUE(f.all_completed());
  EXPECT_GE(s.makespan_s, 6.0);
  EXPECT_LT(f.makespan_s, s.makespan_s);
  EXPECT_LT(f.p99_latency_s, s.p99_latency_s);
  EXPECT_GT(f.recoveries, 0u);

  // Graceful degradation: if the sites never heal the static plan fails
  // their tasks outright; the fabric still completes every one.
  FleetConfig dead = fleet;
  dead.faults = sim::FaultPlan{};
  dead.faults.crash(0, 0.1).crash(1, 0.1);
  const AnalyticsReport s2 = StaticPlanBackend(dead).run(tasks);
  FabricBackend fabric2(dead, tuning);
  const AnalyticsReport f2 = fabric2.run(tasks);
  EXPECT_GT(s2.failed, 0u);
  EXPECT_FALSE(s2.all_completed());
  EXPECT_TRUE(f2.all_completed());
  EXPECT_EQ(f2.completed, 400u);
}

}  // namespace
}  // namespace mc::core::fabric
