// Fault-injection subsystem tests: plans, injector queries, event traces,
// and the LinkPolicy plumbing through the gossip fabric.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chain/p2p.hpp"
#include "crypto/sha256.hpp"
#include "sim/event_queue.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

namespace mc::sim {
namespace {

Hash256 id_of(const std::string& label) { return crypto::sha256(label); }

TEST(FaultPlan, BuildersValidateWindows) {
  FaultPlan plan;
  plan.crash(0, 1.0, 2.0).partition({1}, 3.0, 4.0).degrade(0, 1, 0.0, 5.0,
                                                           0.2, 0.01);
  EXPECT_EQ(plan.crashes().size(), 1u);
  EXPECT_EQ(plan.partitions().size(), 1u);
  EXPECT_EQ(plan.degrades().size(), 1u);
  EXPECT_DOUBLE_EQ(plan.first_fault_at(), 0.0);  // degrade starts at 0
  EXPECT_DOUBLE_EQ(plan.last_heal_at(), 5.0);
  EXPECT_THROW(plan.crash(0, 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(plan.partition({}, 0.0, 1.0), std::invalid_argument);
}

TEST(FaultPlan, RandomPlanIsSeedDeterministic) {
  const FaultPlan a = FaultPlan::random(7, 2, 8, 100.0, 0.01, 5.0, 0.02, 8.0);
  const FaultPlan b = FaultPlan::random(7, 2, 8, 100.0, 0.01, 5.0, 0.02, 8.0);
  ASSERT_EQ(a.crashes().size(), b.crashes().size());
  for (std::size_t i = 0; i < a.crashes().size(); ++i) {
    EXPECT_EQ(a.crashes()[i].node, b.crashes()[i].node);
    EXPECT_DOUBLE_EQ(a.crashes()[i].at, b.crashes()[i].at);
    EXPECT_DOUBLE_EQ(a.crashes()[i].until, b.crashes()[i].until);
  }
  ASSERT_EQ(a.partitions().size(), b.partitions().size());
  for (std::size_t i = 0; i < a.partitions().size(); ++i) {
    EXPECT_EQ(a.partitions()[i].minority_regions,
              b.partitions()[i].minority_regions);
    EXPECT_DOUBLE_EQ(a.partitions()[i].at, b.partitions()[i].at);
  }
  // A different seed produces a different scenario.
  const FaultPlan c = FaultPlan::random(8, 2, 8, 100.0, 0.01, 5.0, 0.02, 8.0);
  const bool differs = c.crashes().size() != a.crashes().size() ||
                       (!c.crashes().empty() && !a.crashes().empty() &&
                        c.crashes()[0].at != a.crashes()[0].at);
  EXPECT_TRUE(differs);
}

TEST(FaultInjector, QueriesTrackTheClock) {
  Network net = Network::uniform(4, 2);  // nodes 0,2 region 0; 1,3 region 1
  EventQueue queue;
  FaultInjector injector(net, queue);
  FaultPlan plan;
  plan.crash(2, 1.0, 3.0).partition({1}, 2.0, 4.0);
  injector.install(std::move(plan));

  EXPECT_FALSE(injector.is_down(2));
  EXPECT_TRUE(injector.connected(0, 1));

  queue.run(1.5);  // inside the crash window only
  EXPECT_TRUE(injector.is_down(2));
  EXPECT_TRUE(injector.connected(0, 1));

  queue.run(2.5);  // crash and partition both active
  EXPECT_TRUE(injector.is_down(2));
  EXPECT_FALSE(injector.connected(0, 1));   // cross-region cut
  EXPECT_TRUE(injector.connected(0, 2));    // same side stays up
  EXPECT_TRUE(injector.connected(1, 3));    // minority side internal
  EXPECT_FALSE(injector.link_policy().up(0, 2));  // ...but 2 is crashed

  queue.run(3.5);  // crash healed, partition still on
  EXPECT_FALSE(injector.is_down(2));
  EXPECT_FALSE(injector.connected(0, 1));

  queue.run(5.0);  // everything healed
  EXPECT_TRUE(injector.connected(0, 1));
  EXPECT_TRUE(injector.link_policy().up(0, 2));
}

TEST(FaultInjector, DegradeAddsLossAndLatency) {
  Network net = Network::uniform(4, 2);
  EventQueue queue;
  FaultInjector injector(net, queue);
  FaultPlan plan;
  plan.degrade(0, 1, 1.0, 2.0, 0.25, 0.05);
  injector.install(std::move(plan));

  EXPECT_DOUBLE_EQ(injector.loss(0, 1), 0.0);
  queue.run(1.5);
  EXPECT_DOUBLE_EQ(injector.loss(0, 1), 0.25);      // cross-region pair
  EXPECT_DOUBLE_EQ(injector.extra_latency(1, 0), 0.05);
  EXPECT_DOUBLE_EQ(injector.loss(0, 2), 0.0);       // same-region pair
  queue.run(2.5);
  EXPECT_DOUBLE_EQ(injector.loss(0, 1), 0.0);
}

TEST(FaultInjector, TraceIsSeedDeterministic) {
  const FaultPlan plan =
      FaultPlan::random(11, 2, 6, 50.0, 0.05, 2.0, 0.05, 3.0);
  ASSERT_FALSE(plan.empty());

  auto run_once = [&plan] {
    Network net = Network::uniform(6, 2);
    EventQueue queue;
    FaultInjector injector(net, queue);
    injector.install(plan);
    queue.run(60.0);
    return injector.trace();
  };
  const std::vector<FaultEvent> first = run_once();
  const std::vector<FaultEvent> second = run_once();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

std::size_t count_events(const std::vector<FaultEvent>& trace,
                         FaultEvent::Kind kind, SimTime at, NodeId node) {
  std::size_t n = 0;
  for (const auto& event : trace)
    if (event.kind == kind && event.at == at && event.node == node) ++n;
  return n;
}

TEST(FaultInjector, OverlappingCrashWindowsFireEachBoundaryOnce) {
  FaultPlan plan;
  plan.crash(2, 1.0, 3.0).crash(2, 2.0, 4.0);  // same node, overlapping

  auto run_once = [&plan](std::vector<double> probes,
                          std::vector<bool>& down_at) {
    Network net = Network::uniform(4, 1);
    EventQueue queue;
    FaultInjector injector(net, queue);
    injector.install(plan);
    down_at.clear();
    for (const double t : probes) {
      queue.run(t);
      down_at.push_back(injector.is_down(2));
    }
    queue.run(10.0);
    return injector.trace();
  };

  std::vector<bool> down;
  const auto trace = run_once({0.5, 1.5, 2.5, 3.5, 4.5}, down);
  // is_down holds across the *union* of the windows, [1, 4).
  EXPECT_EQ(down, (std::vector<bool>{false, true, true, true, false}));
  // Every boundary fires exactly once — four events, no duplicates even
  // where the windows overlap.
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(count_events(trace, FaultEvent::Kind::Crash, 1.0, 2), 1u);
  EXPECT_EQ(count_events(trace, FaultEvent::Kind::Crash, 2.0, 2), 1u);
  EXPECT_EQ(count_events(trace, FaultEvent::Kind::Restart, 3.0, 2), 1u);
  EXPECT_EQ(count_events(trace, FaultEvent::Kind::Restart, 4.0, 2), 1u);
  // Replays identically.
  std::vector<bool> down2;
  EXPECT_EQ(trace, run_once({0.5, 1.5, 2.5, 3.5, 4.5}, down2));
  EXPECT_EQ(down, down2);
}

TEST(FaultInjector, PartitionHealsMidDegradeWindow) {
  FaultPlan plan;
  plan.partition({1}, 1.0, 3.0)
      .degrade(0, 1, 2.0, 5.0, /*extra_loss=*/0.5, /*extra_latency_s=*/0.01);

  auto run_once = [&plan] {
    Network net = Network::uniform(4, 2);  // 0,2 region 0; 1,3 region 1
    EventQueue queue;
    FaultInjector injector(net, queue);
    injector.install(plan);

    queue.run(2.5);  // partition and degrade both active
    EXPECT_FALSE(injector.connected(0, 1));
    EXPECT_DOUBLE_EQ(injector.loss(0, 1), 0.5);

    queue.run(3.5);  // partition healed mid-degrade: lossy but connected
    EXPECT_TRUE(injector.connected(0, 1));
    EXPECT_DOUBLE_EQ(injector.loss(0, 1), 0.5);
    EXPECT_DOUBLE_EQ(injector.extra_latency(0, 1), 0.01);

    queue.run(6.0);  // degrade over too
    EXPECT_DOUBLE_EQ(injector.loss(0, 1), 0.0);
    return injector.trace();
  };

  const auto trace = run_once();
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(count_events(trace, FaultEvent::Kind::PartitionStart, 1.0, kNoNode),
            1u);
  EXPECT_EQ(count_events(trace, FaultEvent::Kind::DegradeStart, 2.0, kNoNode),
            1u);
  EXPECT_EQ(count_events(trace, FaultEvent::Kind::PartitionHeal, 3.0, kNoNode),
            1u);
  EXPECT_EQ(count_events(trace, FaultEvent::Kind::DegradeEnd, 5.0, kNoNode),
            1u);
  EXPECT_EQ(trace, run_once());  // seed-identical replay
}

TEST(GossipFaults, PartitionStarvesMinorityUntilHeal) {
  Network net = Network::uniform(4, 2);
  EventQueue queue;
  FaultInjector injector(net, queue);
  FaultPlan plan;
  plan.partition({1}, 0.0, 10.0);
  injector.install(std::move(plan));

  std::vector<int> delivered(4, 0);
  chain::GossipNet gossip(
      net, queue,
      [&delivered](NodeId node, chain::GossipKind, const Hash256&,
                   const Bytes&, SimTime) { ++delivered[node]; });
  gossip.set_link_policy(injector.link_policy());

  gossip.publish(0, chain::GossipKind::Transaction, id_of("t1"), {1, 2, 3});
  queue.run(5.0);
  EXPECT_EQ(delivered[0], 1);
  EXPECT_EQ(delivered[2], 1);  // same side of the cut
  EXPECT_EQ(delivered[1], 0);  // minority region starved
  EXPECT_EQ(delivered[3], 0);
  EXPECT_GT(gossip.stats().blocked, 0u);
  EXPECT_EQ(gossip.stats().node_deliveries[1], 0u);

  queue.run(11.0);  // heal
  gossip.publish(0, chain::GossipKind::Transaction, id_of("t2"), {4, 5, 6});
  queue.run(20.0);
  EXPECT_EQ(delivered[1], 1);
  EXPECT_EQ(delivered[3], 1);
  EXPECT_EQ(gossip.stats().node_deliveries[3], 1u);
}

TEST(GossipFaults, SeenCapPrunesOldestIds) {
  Network net = Network::uniform(3, 1);
  EventQueue queue;
  chain::GossipNet gossip(
      net, queue,
      [](NodeId, chain::GossipKind, const Hash256&, const Bytes&, SimTime) {});
  gossip.set_seen_cap(4);
  for (int i = 0; i < 10; ++i) {
    gossip.publish(0, chain::GossipKind::Transaction,
                   id_of("tx-" + std::to_string(i)), {0x01});
    queue.run();
  }
  EXPECT_LE(gossip.seen_size(0), 4u);
  EXPECT_LE(gossip.seen_size(1), 4u);
  EXPECT_GT(gossip.stats().seen_pruned, 0u);
  // All ten payloads still reached every node exactly once.
  EXPECT_EQ(gossip.stats().node_deliveries[1], 10u);
  EXPECT_EQ(gossip.stats().node_deliveries[2], 10u);
}

TEST(GossipFaults, UncappedSeenSetKeepsEverything) {
  Network net = Network::uniform(2, 1);
  EventQueue queue;
  chain::GossipNet gossip(
      net, queue,
      [](NodeId, chain::GossipKind, const Hash256&, const Bytes&, SimTime) {});
  for (int i = 0; i < 8; ++i) {
    gossip.publish(0, chain::GossipKind::Transaction,
                   id_of("u-" + std::to_string(i)), {0x02});
    queue.run();
  }
  EXPECT_EQ(gossip.seen_size(0), 8u);
  EXPECT_EQ(gossip.stats().seen_pruned, 0u);
}

}  // namespace
}  // namespace mc::sim
