// Replays the committed fuzz corpus through every harness target in a
// plain gtest binary, so all four presets (release, asan-ubsan, tsan,
// fuzz) exercise every past finding on every CI run — a fixed crash can
// never regress silently even on toolchains without libFuzzer. A seeded
// random sweep per target adds cheap breadth beyond the corpus; its
// inputs derive from splitmix64 so a failure reproduces from the seed.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "fuzz/harness/fuzz_targets.hpp"

#ifndef MEDCHAIN_CORPUS_DIR
#error "build must define MEDCHAIN_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace {

namespace fs = std::filesystem;
using mc::fuzz::TargetInfo;

std::vector<const TargetInfo*> all_targets() {
  std::vector<const TargetInfo*> out;
  for (const auto* t = mc::fuzz::targets(); t->name != nullptr; ++t)
    out.push_back(t);
  return out;
}

mc::Bytes read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return mc::Bytes(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
}

TEST(FuzzRegression, RegistryIsPopulated) {
  EXPECT_GE(all_targets().size(), 6u);
}

// Every target must have a committed seed corpus — an empty directory
// means regression coverage rotted (e.g. a target was renamed without
// moving its corpus).
TEST(FuzzRegression, EveryTargetHasCorpus) {
  const fs::path root(MEDCHAIN_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(root)) << root;
  for (const auto* t : all_targets()) {
    const fs::path dir = root / t->name;
    ASSERT_TRUE(fs::is_directory(dir)) << "missing corpus dir " << dir;
    std::size_t files = 0;
    for (const auto& entry : fs::directory_iterator(dir))
      files += entry.is_regular_file() ? 1 : 0;
    EXPECT_GT(files, 0u) << "empty corpus for target " << t->name;
  }
}

// The param-keyed analyzer seeds (PR 9) drive fuzz_analyze's
// concretization leg: symbolic storage keys evaluated against the
// harness's fixed calldata/env must cover the traced cells, and the
// storage-derived key must refuse to concretize rather than miss. Named
// here so deleting one from the corpus fails loudly instead of silently
// shrinking coverage.
TEST(FuzzRegression, ParamKeyedAnalyzeSeedsCommitted) {
  const fs::path dir = fs::path(MEDCHAIN_CORPUS_DIR) / "analyze";
  const auto* analyze = [] {
    for (const auto* t : all_targets())
      if (std::string_view(t->name) == "analyze") return t;
    return static_cast<const TargetInfo*>(nullptr);
  }();
  ASSERT_NE(analyze, nullptr);
  for (const char* name :
       {"patient_record", "affine_key", "caller_keyed", "selector_switch",
        "nonconcrete_storage_key"}) {
    SCOPED_TRACE(name);
    const fs::path file = dir / name;
    ASSERT_TRUE(fs::is_regular_file(file)) << "missing seed " << file;
    const mc::Bytes data = read_file(file);
    ASSERT_FALSE(data.empty());
    EXPECT_EQ(analyze->fn(data.data(), data.size()), 0);
  }
}

TEST(FuzzRegression, ReplayCommittedCorpus) {
  const fs::path root(MEDCHAIN_CORPUS_DIR);
  std::size_t replayed = 0;
  for (const auto* t : all_targets()) {
    const fs::path dir = root / t->name;
    if (!fs::is_directory(dir)) continue;
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(dir))
      if (entry.is_regular_file()) files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      SCOPED_TRACE(file.string());
      const mc::Bytes data = read_file(file);
      // Harness properties abort on violation; returning at all is the
      // pass condition (sanitizers add their own failure modes).
      EXPECT_EQ(t->fn(data.data(), data.size()), 0);
      ++replayed;
    }
  }
  EXPECT_GT(replayed, 0u);
}

// Seeded random sweep: identical inputs every run (splitmix64 chain), so
// any failure is reproducible with `fuzz_driver <target> --random`.
TEST(FuzzRegression, DeterministicRandomSweep) {
  constexpr std::size_t kInputs = 300;
  constexpr std::size_t kMaxLen = 256;
  for (const auto* t : all_targets()) {
    SCOPED_TRACE(t->name);
    std::uint64_t state = mc::fnv1a(std::string_view(t->name));
    mc::Bytes input;
    for (std::size_t i = 0; i < kInputs; ++i) {
      const std::size_t len =
          static_cast<std::size_t>(mc::splitmix64(state) % (kMaxLen + 1));
      input.resize(len);
      for (std::size_t j = 0; j < len; j += 8) {
        const std::uint64_t word = mc::splitmix64(state);
        for (std::size_t k = 0; k < 8 && j + k < len; ++k)
          input[j + k] = static_cast<std::uint8_t>(word >> (8 * k));
      }
      EXPECT_EQ(t->fn(input.data(), input.size()), 0);
    }
  }
}

// Mutated-corpus sweep: each committed seed replayed with a few seeded
// byte flips — cheap structure-adjacent coverage that random bytes alone
// rarely reach (e.g. a valid block with one corrupted varint).
TEST(FuzzRegression, MutatedCorpusSweep) {
  const fs::path root(MEDCHAIN_CORPUS_DIR);
  std::uint64_t state = 0x6d65'6463'6861'696eULL;  // "medchain"
  for (const auto* t : all_targets()) {
    const fs::path dir = root / t->name;
    if (!fs::is_directory(dir)) continue;
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(dir))
      if (entry.is_regular_file()) files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      SCOPED_TRACE(file.string());
      const mc::Bytes seed = read_file(file);
      if (seed.empty()) continue;
      for (int round = 0; round < 16; ++round) {
        mc::Bytes mutated = seed;
        const std::size_t flips = 1 + mc::splitmix64(state) % 4;
        for (std::size_t f = 0; f < flips; ++f) {
          const std::uint64_t r = mc::splitmix64(state);
          mutated[r % mutated.size()] ^=
              static_cast<std::uint8_t>(r >> 32) | 1;
        }
        EXPECT_EQ(t->fn(mutated.data(), mutated.size()), 0);
      }
    }
  }
}

}  // namespace
