// HIE layer tests: consent, audit chain, encrypted exchange, trial
// registry, misreport study.
#include <gtest/gtest.h>

#include "hie/audit.hpp"
#include "hie/compare.hpp"
#include "hie/consent.hpp"
#include "hie/exchange.hpp"
#include "hie/trial_registry.hpp"

namespace mc::hie {
namespace {

TEST(Consent, GrantCheckRevokeExpiry) {
  ConsentManager consent;
  EXPECT_FALSE(consent.permitted("tok", "uni", kScopeResearch, 0));

  consent.grant("tok", "uni", kScopeResearch, /*expires_day=*/100);
  EXPECT_TRUE(consent.permitted("tok", "uni", kScopeResearch, 50));
  EXPECT_FALSE(consent.permitted("tok", "uni", kScopeTreatment, 50));
  EXPECT_FALSE(consent.permitted("tok", "other", kScopeResearch, 50));
  EXPECT_FALSE(consent.permitted("tok", "uni", kScopeResearch, 101));

  consent.revoke("tok", "uni");
  EXPECT_FALSE(consent.permitted("tok", "uni", kScopeResearch, 50));
}

TEST(Consent, ScopesCombineAcrossGrants) {
  ConsentManager consent;
  consent.grant("tok", "uni", kScopeResearch);
  consent.grant("tok", "uni", kScopeTreatment);
  EXPECT_TRUE(
      consent.permitted("tok", "uni", kScopeResearch | kScopeTreatment, 0));
  EXPECT_FALSE(consent.permitted("tok", "uni", 0, 0));  // empty scope absurd
  EXPECT_EQ(consent.grant_count(), 2u);
  EXPECT_EQ(consent.grantees_of("tok", 0).size(), 1u);
}

TEST(Audit, ChainVerifiesAndDetectsTamper) {
  AuditLog log;
  EXPECT_TRUE(log.verify_chain());
  log.append(1, AuditAction::RequestReceived, "uni", "tok-1");
  log.append(2, AuditAction::ConsentChecked, "uni", "tok-1");
  log.append(3, AuditAction::RecordsReleased, "hospital", "tok-1", "3 records");
  EXPECT_TRUE(log.verify_chain());
  const Hash256 head = log.head();

  AuditLog tampered = log;
  tampered.tamper_detail(1, "nothing to see");
  EXPECT_FALSE(tampered.verify_chain());

  AuditLog truncated = log;
  truncated.truncate(2);
  // Internally consistent after truncation...
  EXPECT_TRUE(truncated.verify_chain());
  // ...but the anchored head exposes it.
  EXPECT_FALSE(truncated.verify_against(head));
  EXPECT_TRUE(log.verify_against(head));
}

TEST(Audit, HeadChangesPerEntry) {
  AuditLog log;
  const Hash256 h0 = log.head();
  log.append(1, AuditAction::RequestReceived, "a", "s");
  const Hash256 h1 = log.head();
  log.append(2, AuditAction::ConsentDenied, "a", "s");
  EXPECT_NE(h0, h1);
  EXPECT_NE(h1, log.head());
}

class ExchangeTest : public ::testing::Test {
 protected:
  ExchangeTest()
      : cohort_(med::generate_cohort({.patients = 40, .seed = 5})),
        dataset_({"hospital-e", med::SchemaKind::CommonV1, 0.0, 1},
                 std::vector<med::PatientRecord>(cohort_.begin(),
                                                 cohort_.begin() + 40),
                 crypto::sha256("national")),
        network_(sim::Network::uniform(4, 2)),
        service_(dataset_, consent_, audit_, network_, /*site_node=*/0,
                 /*hub_node=*/3) {}

  [[nodiscard]] ExchangeRequest request_for(std::size_t patient) const {
    ExchangeRequest req;
    req.requester_org = "university";
    req.patient_token = dataset_.token_for(
        cohort_[patient].demographics.uid);
    req.scopes = kScopeResearch;
    req.today = 10;
    req.requester_node = 1;
    return req;
  }

  std::vector<med::PatientRecord> cohort_;
  med::SiteDataset dataset_;
  ConsentManager consent_;
  AuditLog audit_;
  sim::Network network_;
  ExchangeService service_;
  Hash256 requester_secret_ = crypto::sha256("uni-secret");
};

TEST_F(ExchangeTest, DeniedWithoutConsentAndAudited) {
  const ExchangeResult result =
      service_.serve(request_for(0), requester_secret_, 1'000);
  EXPECT_FALSE(result.permitted);
  EXPECT_EQ(result.records, 0u);
  ASSERT_EQ(audit_.size(), 2u);
  EXPECT_EQ(audit_.entries()[1].action, AuditAction::ConsentDenied);
  EXPECT_TRUE(audit_.verify_chain());
}

TEST_F(ExchangeTest, ConsentedExchangeRoundTrips) {
  const ExchangeRequest req = request_for(3);
  consent_.grant(req.patient_token, "university", kScopeResearch);
  const ExchangeResult result =
      service_.serve(req, requester_secret_, 2'000);
  ASSERT_TRUE(result.permitted);
  EXPECT_EQ(result.records, 1u);
  EXPECT_GT(result.payload_bytes, 0u);
  EXPECT_GT(result.transfer_time_s, 0.0);

  // Only the requester's secret opens the payload.
  const auto opened =
      ExchangeService::open_result(result, requester_secret_, 0);
  ASSERT_TRUE(opened.has_value());
  EXPECT_FALSE(ExchangeService::open_result(result, crypto::sha256("wrong"), 0)
                   .has_value());

  // Audit captured request, consent check, release.
  ASSERT_EQ(audit_.size(), 3u);
  EXPECT_EQ(audit_.entries()[2].action, AuditAction::RecordsReleased);
}

TEST_F(ExchangeTest, HubRouteCostsTwoHops) {
  const ExchangeRequest p2p = request_for(5);
  consent_.grant(p2p.patient_token, "university", kScopeResearch);
  const double direct =
      service_.serve(p2p, requester_secret_, 1).transfer_time_s;

  ExchangeRequest hub = request_for(5);
  hub.route = ExchangeRoute::ViaHub;
  const double relayed =
      service_.serve(hub, requester_secret_, 2).transfer_time_s;
  EXPECT_GT(relayed, direct);
}

class TrialRegistryTest : public ::testing::Test {
 protected:
  vm::ContractStore store_;
  contracts::TrialContract contract_{store_, 1, 1};
  AuditLog audit_;
  TrialRegistry registry_{contract_, audit_};
  Word sponsor_ = fnv1a("pharma-co");
};

TEST_F(TrialRegistryTest, HonestWorkflow) {
  TrialProtocol protocol;
  protocol.trial_id = "NCT00784433";
  protocol.sponsor = "pharma-co";
  protocol.primary_outcome = 501;
  protocol.secondary_outcomes = {601};
  ASSERT_TRUE(registry_.register_trial(protocol, sponsor_, 1));
  EXPECT_FALSE(registry_.register_trial(protocol, sponsor_, 2));  // dup

  EXPECT_TRUE(registry_.enroll("NCT00784433", "patient-a", sponsor_, 3));
  EXPECT_TRUE(registry_.enroll("NCT00784433", "patient-b", sponsor_, 4));
  EXPECT_FALSE(registry_.enroll("NCT-unknown", "p", sponsor_, 5));
  EXPECT_EQ(registry_.enrollment("NCT00784433"), 2u);

  TrialReport report;
  report.trial_id = "NCT00784433";
  report.reported_outcome = 501;
  const ReportVerdict verdict = registry_.file_report(report, sponsor_, 6);
  EXPECT_TRUE(verdict.registered);
  EXPECT_TRUE(verdict.outcome_matches);
  EXPECT_TRUE(verdict.onchain_confirms);
  EXPECT_TRUE(audit_.verify_chain());
}

TEST_F(TrialRegistryTest, OutcomeSwitchFlagged) {
  TrialProtocol protocol;
  protocol.trial_id = "NCT1";
  protocol.sponsor = "pharma-co";
  protocol.primary_outcome = 501;
  protocol.secondary_outcomes = {601};
  ASSERT_TRUE(registry_.register_trial(protocol, sponsor_, 1));

  TrialReport switched;
  switched.trial_id = "NCT1";
  switched.reported_outcome = 601;  // secondary reported as primary
  const ReportVerdict verdict = registry_.file_report(switched, sponsor_, 2);
  EXPECT_TRUE(verdict.registered);
  EXPECT_FALSE(verdict.outcome_matches);
  EXPECT_FALSE(verdict.onchain_confirms);
}

TEST_F(TrialRegistryTest, UnregisteredReportRejected) {
  TrialReport report;
  report.trial_id = "NCT-ghost";
  EXPECT_FALSE(registry_.file_report(report, sponsor_, 1).registered);
}

TEST(Compare, OnchainDetectionDominatesManualAudit) {
  vm::ContractStore store;
  contracts::TrialContract contract(store, 1, 1);
  AuditLog audit;
  TrialRegistry registry(contract, audit);

  MisreportConfig config;  // COMPare-like rates
  const DetectionReport report =
      run_misreport_study(config, registry, fnv1a("sponsor"));
  EXPECT_EQ(report.trials, 67u);
  EXPECT_GT(report.dishonest, 0u);
  EXPECT_DOUBLE_EQ(report.onchain_rate(), 1.0);   // mechanical check
  EXPECT_LT(report.manual_rate(), 0.5);           // editorial sampling
  EXPECT_EQ(report.false_positives_onchain, 0u);
}

TEST(Compare, HonestPopulationRaisesNoFlags) {
  vm::ContractStore store;
  contracts::TrialContract contract(store, 1, 1);
  AuditLog audit;
  TrialRegistry registry(contract, audit);

  MisreportConfig config;
  config.outcome_switch_rate = 0.0;
  config.data_tamper_rate = 0.0;
  const DetectionReport report =
      run_misreport_study(config, registry, fnv1a("sponsor"));
  EXPECT_EQ(report.dishonest, 0u);
  EXPECT_EQ(report.false_positives_onchain, 0u);
}

}  // namespace
}  // namespace mc::hie
