// Learning substrate tests: matrix, metrics, models, federated,
// transfer, query vectors.
#include <gtest/gtest.h>

#include <cmath>

#include "learn/dataset.hpp"
#include "learn/federated.hpp"
#include "learn/logistic.hpp"
#include "learn/matrix.hpp"
#include "learn/metrics.hpp"
#include "learn/mlp.hpp"
#include "learn/query_vector.hpp"
#include "learn/transfer.hpp"
#include "med/generator.hpp"

namespace mc::learn {
namespace {

/// Linearly separable synthetic binary dataset.
DataSet separable(std::size_t n, std::uint64_t seed, double noise = 0.0) {
  Rng rng(seed);
  DataSet data;
  data.x = Matrix(n, 2);
  data.y.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.normal(0, 1), b = rng.normal(0, 1);
    data.x(i, 0) = a;
    data.x(i, 1) = b;
    const double boundary = 2.0 * a - b + rng.normal(0, noise);
    data.y.push_back(boundary > 0 ? 1.0 : 0.0);
  }
  return data;
}

TEST(MatrixOps, MatmulKnownValues) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  int v = 1;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 2; ++j) b(i, j) = v++;
  const Matrix c = a.matmul(b);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(MatrixOps, TransposeVariantsAgree) {
  Rng rng(4);
  Matrix a(4, 3), b(4, 5);
  for (auto& x : a.data()) x = rng.normal();
  for (auto& x : b.data()) x = rng.normal();
  // a^T * b  == (manually transposed a) * b
  Matrix at(3, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j) at(j, i) = a(i, j);
  const Matrix direct = at.matmul(b);
  const Matrix fused = a.transpose_matmul(b);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_NEAR(direct(i, j), fused(i, j), 1e-12);
}

TEST(MatrixOps, ShapeMismatchThrows) {
  EXPECT_THROW(Matrix(2, 3).matmul(Matrix(2, 3)), std::invalid_argument);
  Matrix a(2, 2);
  EXPECT_THROW(a.add_inplace(Matrix(3, 3)), std::invalid_argument);
}

TEST(MatrixOps, FlopCounterTracksWork) {
  FlopCounter::reset();
  const Matrix product = Matrix(8, 8).matmul(Matrix(8, 8));
  (void)product;
  EXPECT_EQ(FlopCounter::value(), 2u * 8 * 8 * 8);
}

TEST(Metrics, AucKnownCases) {
  // Perfect ranking.
  const std::vector<double> p1 = {0.1, 0.2, 0.8, 0.9};
  const std::vector<double> y1 = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(auc(p1, y1), 1.0);
  // Inverted ranking.
  const std::vector<double> y2 = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(auc(p1, y2), 0.0);
  // All ties -> 0.5.
  const std::vector<double> p3 = {0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(auc(p3, y1), 0.5);
  // Degenerate single-class input.
  const std::vector<double> y4 = {1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(auc(p1, y4), 0.5);
}

TEST(Metrics, AccuracyAndConfusion) {
  const std::vector<double> p = {0.9, 0.4, 0.6, 0.1};
  const std::vector<double> y = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(accuracy(p, y), 0.5);
  const Confusion c = confusion(p, y);
  EXPECT_EQ(c.tp, 1u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_DOUBLE_EQ(c.precision(), 0.5);
  EXPECT_DOUBLE_EQ(c.recall(), 0.5);
}

TEST(Metrics, LogLossBounds) {
  const std::vector<double> perfect = {1.0, 0.0};
  const std::vector<double> labels = {1, 0};
  EXPECT_LT(log_loss(perfect, labels), 1e-9);
  const std::vector<double> wrong = {0.0, 1.0};
  EXPECT_GT(log_loss(wrong, labels), 10.0);
}

TEST(DataSetOps, SplitAndShuffle) {
  DataSet data = separable(100, 1);
  const auto [head, tail] = data.split(0.7);
  EXPECT_EQ(head.size(), 70u);
  EXPECT_EQ(tail.size(), 30u);

  Rng rng(2);
  const DataSet shuffled = data.shuffled(rng);
  EXPECT_EQ(shuffled.size(), data.size());
  double sum_orig = 0, sum_shuf = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    sum_orig += data.x(i, 0);
    sum_shuf += shuffled.x(i, 0);
  }
  EXPECT_NEAR(sum_orig, sum_shuf, 1e-9);  // permutation preserves content
}

TEST(DataSetOps, StandardizerNormalizes) {
  DataSet data = separable(500, 3);
  for (std::size_t i = 0; i < data.size(); ++i) data.x(i, 0) = data.x(i, 0) * 10 + 100;
  const Standardizer s = Standardizer::fit(data.x);
  s.apply(data.x);
  double mean = 0;
  for (std::size_t i = 0; i < data.size(); ++i) mean += data.x(i, 0);
  mean /= static_cast<double>(data.size());
  EXPECT_NEAR(mean, 0.0, 1e-9);
}

TEST(DataSetOps, FromRecordsSkipsUnlabeled) {
  std::vector<med::CommonRecord> records(3);
  records[0].label_stroke = 1.0;
  records[1].label_stroke = std::numeric_limits<double>::quiet_NaN();
  records[2].label_stroke = 0.0;
  const DataSet data = dataset_from_records(records, LabelKind::Stroke);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_NEAR(prevalence(data), 0.5, 1e-12);
}

TEST(Logistic, LearnsSeparableBoundary) {
  const DataSet train = separable(800, 5);
  const DataSet test = separable(200, 6);
  LogisticModel model(2);
  SgdConfig sgd;
  sgd.epochs = 30;
  model.train(train, sgd);
  EXPECT_GT(accuracy(model.predict(test.x), test.y), 0.95);
  // Recovered weight signs match the generating boundary 2a - b.
  EXPECT_GT(model.weights()[0], 0.0);
  EXPECT_LT(model.weights()[1], 0.0);
}

TEST(Logistic, ParameterRoundTrip) {
  LogisticModel model(3);
  const std::vector<double> params = {0.5, -1.0, 2.0, 0.25};
  model.set_parameters(params);
  EXPECT_EQ(model.parameters(), params);
  EXPECT_THROW(model.set_parameters(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(Mlp, LearnsNonlinearBoundary) {
  // XOR-like quadrant problem a linear model cannot solve.
  Rng rng(7);
  auto quadrants = [&rng](std::size_t n) {
    DataSet data;
    data.x = Matrix(n, 2);
    for (std::size_t i = 0; i < n; ++i) {
      const double a = rng.normal(), b = rng.normal();
      data.x(i, 0) = a;
      data.x(i, 1) = b;
      data.y.push_back((a > 0) != (b > 0) ? 1.0 : 0.0);
    }
    return data;
  };
  const DataSet train = quadrants(1'500);
  const DataSet test = quadrants(300);

  LogisticModel linear(2);
  SgdConfig sgd;
  sgd.epochs = 40;
  linear.train(train, sgd);
  const double linear_acc = accuracy(linear.predict(test.x), test.y);
  EXPECT_LT(linear_acc, 0.65);  // linear cannot do XOR

  Mlp mlp(2, 16, 11);
  sgd.learning_rate = 0.3;
  sgd.epochs = 60;
  mlp.train(train, sgd);
  EXPECT_GT(accuracy(mlp.predict(test.x), test.y), 0.9);
}

TEST(Mlp, ParametersRoundTripAndHiddenAdoption) {
  Mlp a(4, 8, 1), b(4, 8, 2);
  b.set_parameters(a.parameters());
  EXPECT_EQ(a.parameters(), b.parameters());

  Mlp c(4, 8, 3);
  c.adopt_hidden_layer(a);
  // Hidden layer equal, output layer still c's own.
  const auto pa = a.parameters();
  const auto pc = c.parameters();
  const std::size_t hidden_span = 4 * 8 + 8;
  for (std::size_t i = 0; i < hidden_span; ++i) EXPECT_EQ(pa[i], pc[i]);

  EXPECT_THROW(c.adopt_hidden_layer(Mlp(4, 16)), std::invalid_argument);
}

TEST(Mlp, FreezeHiddenKeepsFirstLayerFixed) {
  const DataSet train = separable(200, 9);
  Mlp model(2, 8, 5);
  const auto before = model.parameters();
  SgdConfig sgd;
  sgd.epochs = 5;
  model.train(train, sgd, /*freeze_hidden=*/true);
  const auto after = model.parameters();
  const std::size_t hidden_span = 2 * 8 + 8;
  for (std::size_t i = 0; i < hidden_span; ++i)
    EXPECT_EQ(before[i], after[i]);  // frozen
  bool output_changed = false;
  for (std::size_t i = hidden_span; i < after.size(); ++i)
    if (before[i] != after[i]) output_changed = true;
  EXPECT_TRUE(output_changed);
}

TEST(Federated, FedAvgApproachesCentralized) {
  // 6 clients with disjoint shards of one distribution.
  std::vector<DataSet> clients;
  for (int c = 0; c < 6; ++c)
    clients.push_back(separable(150, 100 + c, 0.3));
  const DataSet test = separable(400, 999, 0.3);

  LogisticModel fed_model(2);
  FederatedConfig config;
  config.rounds = 15;
  config.local_epochs = 2;
  const FederatedResult fed = fed_avg(fed_model, clients, test, config);

  LogisticModel central(2);
  SgdConfig sgd;
  sgd.epochs = 30;
  const RoundMetrics central_metrics =
      centralized_baseline(central, clients, test, sgd);

  const double fed_acc = fed.history.back().test_accuracy;
  EXPECT_GT(fed_acc, 0.85);
  EXPECT_NEAR(fed_acc, central_metrics.test_accuracy, 0.06);

  // Local-only baseline (one client's data) is worse or equal.
  LogisticModel local(2);
  local.train(clients[0], sgd);
  EXPECT_LE(accuracy(local.predict(test.x), test.y), fed_acc + 0.02);
}

TEST(Federated, LossImprovesOverRounds) {
  std::vector<DataSet> clients;
  for (int c = 0; c < 4; ++c) clients.push_back(separable(100, 200 + c, 0.5));
  const DataSet test = separable(300, 888, 0.5);
  LogisticModel model(2);
  FederatedConfig config;
  config.rounds = 12;
  config.local_epochs = 1;
  config.local_sgd.learning_rate = 0.02;  // slow start: visible progress
  const FederatedResult result = fed_avg(model, clients, test, config);
  EXPECT_LT(result.history.back().test_loss,
            result.history.front().test_loss);
  EXPECT_GT(result.history.back().test_accuracy, 0.75);
}

TEST(Federated, CommunicationIsParametersNotData) {
  std::vector<DataSet> clients;
  for (int c = 0; c < 5; ++c) clients.push_back(separable(2'000, 300 + c));
  const DataSet test = separable(100, 777);
  LogisticModel model(2);
  FederatedConfig config;
  config.rounds = 10;
  const FederatedResult fed = fed_avg(model, clients, test, config);

  // Raw data movement (centralized) vs parameter movement (federated).
  const std::uint64_t raw_bytes = 5ull * 2'000 * 3 * sizeof(double);
  EXPECT_LT(fed.total_bytes, raw_bytes / 10);
  // Exactly rounds * clients * params * 8 bytes each way.
  EXPECT_EQ(fed.total_bytes, 2ull * 10 * 5 * 3 * sizeof(double));
}

TEST(Federated, ClientSamplingFraction) {
  std::vector<DataSet> clients;
  for (int c = 0; c < 10; ++c) clients.push_back(separable(50, 400 + c));
  const DataSet test = separable(100, 555);
  LogisticModel model(2);
  FederatedConfig config;
  config.rounds = 4;
  config.client_fraction = 0.3;
  const FederatedResult result = fed_avg(model, clients, test, config);
  // 3 of 10 clients per round -> 4*3 uploads.
  EXPECT_EQ(result.history.back().bytes_uploaded,
            4ull * 3 * 3 * sizeof(double));
}

TEST(Transfer, CorePretrainingBeatsScratchOnSmallTarget) {
  // Core: large cohort. Target: small shifted cohort.
  med::CohortConfig core_config;
  core_config.patients = 3'000;
  core_config.seed = 42;
  med::CohortConfig target_config;
  target_config.patients = 260;
  target_config.seed = 43;
  target_config.age_shift_years = 5;

  auto to_dataset = [](const std::vector<med::PatientRecord>& cohort) {
    std::vector<med::CommonRecord> records;
    for (const auto& p : cohort) records.push_back(med::to_common(p));
    return dataset_from_records(records, LabelKind::Stroke);
  };
  DataSet core = to_dataset(med::generate_cohort(core_config));
  DataSet target = to_dataset(med::generate_cohort(target_config));

  // Standardize everything with core statistics (the shared featurizer).
  const Standardizer standardizer = Standardizer::fit(core.x);
  standardizer.apply(core.x);
  standardizer.apply(target.x);

  const auto [target_train, target_test] = target.split(0.3);
  TransferConfig config;
  const TransferOutcome outcome =
      run_transfer(core, target_train, target_test, config);
  EXPECT_GT(outcome.transfer_auc, 0.6);
  EXPECT_GE(outcome.transfer_auc, outcome.scratch_auc - 0.03);
}

TEST(QueryVector, ParsesTrainingQuery) {
  const auto qv = parse_query(
      "predict stroke for smokers with age over 60 using logistic rounds 5");
  ASSERT_TRUE(qv.has_value());
  EXPECT_EQ(qv->task, TaskKind::TrainModel);
  EXPECT_EQ(qv->label, LabelKind::Stroke);
  EXPECT_EQ(qv->model, ModelKind::Logistic);
  EXPECT_EQ(qv->federated_rounds, 5u);
  bool has_smoker = false, has_age = false;
  for (const auto& range : qv->cohort.where) {
    if (range.field == "smoker") has_smoker = true;
    if (range.field == "age") {
      has_age = true;
      EXPECT_DOUBLE_EQ(range.min, 60.0);
    }
  }
  EXPECT_TRUE(has_smoker);
  EXPECT_TRUE(has_age);
}

TEST(QueryVector, ParsesAggregateAndRetrieve) {
  const auto agg = parse_query("average of systolic_bp for women");
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->task, TaskKind::AggregateStats);
  EXPECT_EQ(agg->aggregate_field, "systolic_bp");

  const auto ret = parse_query("retrieve age and glucose for bmi over 30");
  ASSERT_TRUE(ret.has_value());
  EXPECT_EQ(ret->task, TaskKind::RetrieveData);
  EXPECT_FALSE(ret->cohort.select.empty());
}

TEST(QueryVector, RejectsTasklessText) {
  EXPECT_FALSE(parse_query("hello world").has_value());
}

TEST(QueryVector, DigestSensitiveToContents) {
  QueryVector a;
  a.task = TaskKind::TrainModel;
  QueryVector b = a;
  EXPECT_EQ(a.digest(), b.digest());
  b.cohort.where.push_back(med::FieldRange{"age", 60, 100});
  EXPECT_NE(a.digest(), b.digest());
  b.federated_rounds = 77;
  EXPECT_NE(a.digest(), b.digest());
}

TEST(QueryVector, MlpAndCancerRecognized) {
  const auto qv = parse_query("train cancer model using mlp");
  ASSERT_TRUE(qv.has_value());
  EXPECT_EQ(qv->label, LabelKind::Cancer);
  EXPECT_EQ(qv->model, ModelKind::Mlp);
}

}  // namespace
}  // namespace mc::learn
