// Medical data substrate tests: generator, schemas, datasets, linkage,
// query engine, anchoring.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "contracts/registry.hpp"
#include "crypto/sha256_batch.hpp"
#include "med/anchor.hpp"
#include "med/dataset.hpp"
#include "med/generator.hpp"
#include "med/linkage.hpp"
#include "med/query.hpp"
#include "med/schema.hpp"

namespace mc::med {
namespace {

CohortConfig small_cohort(std::size_t n = 300) {
  CohortConfig config;
  config.patients = n;
  config.seed = 99;
  return config;
}

TEST(Generator, DeterministicAndSized) {
  const auto a = generate_cohort(small_cohort());
  const auto b = generate_cohort(small_cohort());
  ASSERT_EQ(a.size(), 300u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].demographics.uid, b[i].demographics.uid);
    EXPECT_EQ(a[i].outcomes.stroke, b[i].outcomes.stroke);
    EXPECT_EQ(serialize_record(a[i]), serialize_record(b[i]));
  }
}

TEST(Generator, PlausibleRanges) {
  const auto cohort = generate_cohort(small_cohort(500));
  for (const auto& p : cohort) {
    const CommonRecord r = to_common(p);
    EXPECT_GE(r.age, 20.0);
    EXPECT_LE(r.age, 96.0);
    EXPECT_GE(r.systolic_bp, 90.0);
    EXPECT_LE(r.systolic_bp, 210.0);
    EXPECT_GE(r.hba1c, 4.0);
    EXPECT_GE(r.snp_burden, 0.0);
    EXPECT_LE(r.snp_burden, 16.0);  // 8 SNPs x 2 alleles
    EXPECT_GT(p.outcomes.stroke_risk, 0.0);
    EXPECT_LT(p.outcomes.stroke_risk, 1.0);
  }
}

TEST(Generator, RiskModelMonotonicInRiskFactors) {
  RiskModel model;
  CommonRecord base;
  base.age = 55;
  base.systolic_bp = 120;
  base.glucose = 100;
  base.hba1c = 5.5;
  base.activity_hours = 1.0;
  const double p0 = model.probability(base);

  CommonRecord smoker = base;
  smoker.smoker = 1;
  EXPECT_GT(model.probability(smoker), p0);

  CommonRecord hypertensive = base;
  hypertensive.systolic_bp = 170;
  EXPECT_GT(model.probability(hypertensive), p0);

  CommonRecord active = base;
  active.activity_hours = 3.0;
  EXPECT_LT(model.probability(active), p0);
}

TEST(Generator, OutcomeRateTracksLatentRisk) {
  const auto cohort = generate_cohort(small_cohort(4'000));
  double mean_risk = 0, rate = 0;
  for (const auto& p : cohort) {
    mean_risk += p.outcomes.stroke_risk;
    rate += p.outcomes.stroke ? 1.0 : 0.0;
  }
  mean_risk /= static_cast<double>(cohort.size());
  rate /= static_cast<double>(cohort.size());
  EXPECT_NEAR(rate, mean_risk, 0.02);
}

TEST(Schema, NormalizeDenormalizeRoundTrip) {
  const auto cohort = generate_cohort(small_cohort(10));
  for (const auto kind :
       {SchemaKind::CommonV1, SchemaKind::HospitalLegacyA,
        SchemaKind::HospitalLegacyB, SchemaKind::WearableVendor,
        SchemaKind::GenomeLab}) {
    const CommonRecord original = to_common(cohort[0]);
    const RawRow row = denormalize(original, kind, "token");
    const PartialRecord back = normalize(row, kind);
    // Every field the schema carries must round-trip exactly.
    for (const auto& rule : schema_def(kind).rules) {
      ASSERT_TRUE(back.fields.count(rule.canonical) == 1)
          << schema_def(kind).name << " lost " << rule.canonical;
      const auto features = features_of(original);
      double expected = 0;
      for (std::size_t i = 0; i < kFeatureNames.size(); ++i)
        if (kFeatureNames[i] == rule.canonical) expected = features[i];
      EXPECT_NEAR(back.fields.at(rule.canonical), expected, 1e-9)
          << schema_def(kind).name << "." << rule.canonical;
    }
  }
}

TEST(Schema, UnitConversionsApplied) {
  CommonRecord r;
  r.cholesterol = 193.35;  // mg/dL == 5.0 mmol/L
  r.glucose = 90.1;        // mg/dL == 5.0 mmol/L
  const RawRow a = denormalize(r, SchemaKind::HospitalLegacyA, "");
  bool found = false;
  for (const auto& [name, value] : a.fields) {
    if (name == "chol_mmol") {
      EXPECT_NEAR(value, 5.0, 1e-6);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  const RawRow b = denormalize(r, SchemaKind::HospitalLegacyB, "");
  for (const auto& [name, value] : b.fields) {
    if (name == "glukose_mmol") EXPECT_NEAR(value, 5.0, 1e-6);
  }
}

TEST(Schema, SexCodingOffsetInLegacyA) {
  CommonRecord male;
  male.sex = 1.0;
  const RawRow row = denormalize(male, SchemaKind::HospitalLegacyA, "");
  for (const auto& [name, value] : row.fields) {
    if (name == "sex_code") EXPECT_DOUBLE_EQ(value, 2.0);  // 2 = male
  }
  EXPECT_DOUBLE_EQ(
      normalize(row, SchemaKind::HospitalLegacyA).fields.at("sex"), 1.0);
}

TEST(Schema, OutcomesOnlyWhereSchemaHasThem) {
  CommonRecord r;
  r.label_stroke = 1.0;
  const RawRow hospital = denormalize(r, SchemaKind::HospitalLegacyA, "");
  EXPECT_TRUE(hospital.outcome_stroke.has_value());
  const RawRow wearable = denormalize(r, SchemaKind::WearableVendor, "");
  EXPECT_FALSE(wearable.outcome_stroke.has_value());
}

TEST(Federation, SplitsWithOverlapAndCoverage) {
  const auto cohort = generate_cohort(small_cohort(1'000));
  FederationConfig config;
  config.hospital_count = 4;
  config.second_hospital_rate = 0.25;
  config.wearable_coverage = 0.5;
  config.genome_coverage = 0.3;
  const Federation fed = build_federation(cohort, config);

  ASSERT_EQ(fed.sites.size(), 6u);  // 4 hospitals + wearable + genome
  std::size_t hospital_rows = 0;
  for (std::size_t h = 0; h < 4; ++h) hospital_rows += fed.sites[h].size();
  // Every patient has a home hospital; ~25% a second one.
  EXPECT_GE(hospital_rows, 1'000u);
  EXPECT_NEAR(static_cast<double>(hospital_rows), 1'250.0, 60.0);
  EXPECT_NEAR(static_cast<double>(fed.sites[4].size()), 500.0, 60.0);
  EXPECT_NEAR(static_cast<double>(fed.sites[5].size()), 300.0, 60.0);
}

TEST(Federation, TokensAgreeAcrossSites) {
  const auto cohort = generate_cohort(small_cohort(50));
  const Federation fed = build_federation(cohort, {});
  const PatientUid uid = cohort[0].demographics.uid;
  EXPECT_EQ(fed.sites[0].token_for(uid), fed.sites[1].token_for(uid));
  EXPECT_NE(fed.sites[0].token_for(uid),
            fed.sites[0].token_for(cohort[1].demographics.uid));
}

TEST(SiteDataset, DigestChangesOnAppendAndTamper) {
  const auto cohort = generate_cohort(small_cohort(20));
  SiteDataset site({"s", SchemaKind::CommonV1, 0.0, 1},
                   {cohort.begin(), cohort.begin() + 10},
                   crypto::sha256("nat-key"));
  const Hash256 d0 = site.content_digest();
  EXPECT_EQ(d0, site.content_digest());  // stable

  SiteDataset copy = site;
  copy.append(cohort[15]);
  EXPECT_NE(copy.content_digest(), d0);

  SiteDataset tampered = site;
  tampered.tamper(3, 25.0);
  EXPECT_NE(tampered.content_digest(), d0);
}

TEST(Linkage, MergesModalitiesAcrossSites) {
  const auto cohort = generate_cohort(small_cohort(400));
  FederationConfig config;
  config.token_missing_rate = 0.0;
  const Federation fed = build_federation(cohort, config);

  RecordLinker linker;
  for (const auto& site : fed.sites)
    linker.add_site(site.export_rows(), site.config().schema);
  IntegrationReport report;
  const auto merged = linker.integrate(&report);

  EXPECT_EQ(report.rows_unlinkable, 0u);
  EXPECT_EQ(report.patients_merged, 400u);  // every patient linked
  EXPECT_EQ(merged.size(), 400u);
  EXPECT_EQ(report.labeled_patients, 400u);  // every home hospital labels
  EXPECT_GT(report.mean_modalities_per_patient, 1.5);
  // Wearable/genome fields exist only for covered subsets, rest imputed.
  EXPECT_GT(report.imputed_fields, 0u);
}

TEST(Linkage, MissingTokensDropRows) {
  const auto cohort = generate_cohort(small_cohort(200));
  FederationConfig config;
  config.token_missing_rate = 0.5;
  const Federation fed = build_federation(cohort, config);
  RecordLinker linker;
  for (const auto& site : fed.sites)
    linker.add_site(site.export_rows(), site.config().schema);
  IntegrationReport report;
  (void)linker.integrate(&report);
  EXPECT_NEAR(static_cast<double>(report.rows_unlinkable) /
                  static_cast<double>(report.rows_in),
              0.5, 0.08);
  EXPECT_LT(report.patients_merged, 200u);
}

TEST(Linkage, ImputationFillsEveryFeature) {
  const auto cohort = generate_cohort(small_cohort(100));
  const Federation fed = build_federation(cohort, {});
  RecordLinker linker;
  for (const auto& site : fed.sites)
    linker.add_site(site.export_rows(), site.config().schema);
  for (const auto& record : linker.integrate()) {
    for (const double v : features_of(record))
      EXPECT_FALSE(std::isnan(v));
  }
}

TEST(Query, FieldAccessAndFilters) {
  CommonRecord r;
  r.age = 65;
  r.sex = 1;
  r.smoker = 1;
  r.label_stroke = 1;
  EXPECT_DOUBLE_EQ(*field_value(r, "age"), 65.0);
  EXPECT_DOUBLE_EQ(*field_value(r, "label_stroke"), 1.0);
  EXPECT_FALSE(field_value(r, "nonexistent").has_value());

  Query query;
  query.where = {{"age", 60, 120}, {"smoker", 0.5, 1.5}};
  EXPECT_TRUE(matches(r, query));
  query.where.push_back({"sex", -0.5, 0.5});  // female only
  EXPECT_FALSE(matches(r, query));
}

TEST(Query, RunQueryProjectsSelectedFields) {
  const auto cohort = generate_cohort(small_cohort(200));
  std::vector<CommonRecord> records;
  for (const auto& p : cohort) records.push_back(to_common(p));

  Query query;
  query.where = {{"age", 70, 200}};
  query.select = {"age", "systolic_bp"};
  QueryStats stats;
  const auto rows = run_query(records, query, &stats);
  EXPECT_EQ(stats.rows_scanned, 200u);
  EXPECT_EQ(stats.rows_matched, rows.size());
  for (const auto& row : rows) {
    ASSERT_EQ(row.size(), 2u);
    EXPECT_GE(row[0], 70.0);
  }
}

TEST(Query, AggregateMergeMatchesPooled) {
  const auto cohort = generate_cohort(small_cohort(500));
  std::vector<CommonRecord> all;
  for (const auto& p : cohort) all.push_back(to_common(p));

  Query query;  // unfiltered
  const Aggregate pooled =
      aggregate_field(all, query, "systolic_bp");

  // Split into 3 "sites", aggregate separately, merge.
  Aggregate merged;
  for (int part = 0; part < 3; ++part) {
    std::vector<CommonRecord> chunk;
    for (std::size_t i = part; i < all.size(); i += 3) chunk.push_back(all[i]);
    merged.merge(aggregate_field(chunk, query, "systolic_bp"));
  }
  EXPECT_EQ(merged.count, pooled.count);
  EXPECT_NEAR(merged.mean, pooled.mean, 1e-9);
  EXPECT_NEAR(merged.variance(), pooled.variance(), 1e-6);
}

class AggregateMergeOrder : public ::testing::TestWithParam<int> {};

TEST_P(AggregateMergeOrder, OrderInsensitive) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.normal(10, 3));

  Aggregate forward, backward;
  for (const double v : values) forward.add(v);
  Aggregate tail_agg;
  for (std::size_t i = values.size(); i-- > 100;) tail_agg.add(values[i]);
  Aggregate head_agg;
  for (std::size_t i = 0; i < 100; ++i) head_agg.add(values[i]);
  backward = tail_agg;
  backward.merge(head_agg);

  EXPECT_EQ(forward.count, backward.count);
  EXPECT_NEAR(forward.mean, backward.mean, 1e-9);
  EXPECT_NEAR(forward.m2, backward.m2, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateMergeOrder, ::testing::Range(1, 6));

class AnchorTest : public ::testing::Test {
 protected:
  AnchorTest()
      : cohort_(generate_cohort(small_cohort(30))),
        site_({"hospital-x", SchemaKind::CommonV1, 0.0, 1},
              {cohort_.begin(), cohort_.begin() + 20},
              crypto::sha256("key")),
        registry_(store_, 1, 1) {}

  std::vector<PatientRecord> cohort_;
  SiteDataset site_;
  vm::ContractStore store_;
  contracts::RegistryContract registry_;
  contracts::Word owner_ = fnv1a("hospital-x");
};

TEST_F(AnchorTest, CleanAuditAfterAnchoring) {
  EXPECT_FALSE(audit_dataset(registry_, site_).registered);
  ASSERT_TRUE(anchor_dataset(registry_, owner_, site_));
  const AuditResult audit = audit_dataset(registry_, site_);
  EXPECT_TRUE(audit.clean());
}

TEST_F(AnchorTest, TamperDetectedByAudit) {
  ASSERT_TRUE(anchor_dataset(registry_, owner_, site_));
  site_.tamper(5, -40.0);  // silently falsify a lab value
  const AuditResult audit = audit_dataset(registry_, site_);
  EXPECT_TRUE(audit.registered);
  EXPECT_FALSE(audit.digest_matches);
}

TEST_F(AnchorTest, LegitimateAppendNeedsRefresh) {
  ASSERT_TRUE(anchor_dataset(registry_, owner_, site_));
  site_.append(cohort_[25]);
  EXPECT_FALSE(audit_dataset(registry_, site_).digest_matches);
  ASSERT_TRUE(refresh_anchor(registry_, owner_, site_));
  EXPECT_TRUE(audit_dataset(registry_, site_).clean());
  EXPECT_EQ(registry_.meta_of(dataset_word(site_))->record_count, 21u);
}

TEST_F(AnchorTest, RecordInclusionProofs) {
  ASSERT_TRUE(anchor_dataset(registry_, owner_, site_));
  for (const std::size_t index : {0u, 7u, 19u})
    EXPECT_TRUE(verify_record_inclusion(registry_, site_, index));
  EXPECT_FALSE(verify_record_inclusion(registry_, site_, 999));

  site_.tamper(7, 3.0);
  // The tampered dataset's live root no longer matches the chain.
  EXPECT_FALSE(verify_record_inclusion(registry_, site_, 7));
}

TEST_F(AnchorTest, BatchAuditVerifiesEveryRecord) {
  // Unregistered dataset: nothing verifies.
  EXPECT_EQ(verify_all_records(registry_, site_), 0u);
  ASSERT_TRUE(anchor_dataset(registry_, owner_, site_));
  EXPECT_EQ(verify_all_records(registry_, site_), site_.size());

  // Stale root (tamper without refresh): the whole audit fails closed.
  site_.tamper(3, 2.5);
  EXPECT_EQ(verify_all_records(registry_, site_), 0u);

  // The audit is backend-independent: portable and SIMD agree.
  ASSERT_TRUE(refresh_anchor(registry_, owner_, site_));
  crypto::set_hash_backend(crypto::HashBackend::kPortable);
  const std::size_t portable = verify_all_records(registry_, site_);
  crypto::set_hash_backend(crypto::HashBackend::kSimd);
  const std::size_t simd = verify_all_records(registry_, site_);
  crypto::set_hash_backend(crypto::HashBackend::kAuto);
  EXPECT_EQ(portable, site_.size());
  EXPECT_EQ(simd, portable);
}

}  // namespace
}  // namespace mc::med
