// Full-node tests: block production, validation, fork choice, the
// duplicated-execution property.
#include <gtest/gtest.h>

#include <memory>

#include "chain/node.hpp"
#include "chain/pow.hpp"

namespace mc::chain {
namespace {

struct Harness {
  crypto::PrivateKey alice = crypto::key_from_seed("alice");
  crypto::PrivateKey bob = crypto::key_from_seed("bob");
  ChainParams params;
  Block genesis;

  Harness() {
    params.consensus = ConsensusKind::Pbft;  // no PoW check in receive()
    params.premine = {{crypto::address_of(alice.pub), 10'000'000},
                      {crypto::address_of(bob.pub), 10'000'000}};
    genesis = make_genesis("node-test", params.pow_target);
  }

  [[nodiscard]] Node make_node(const std::string& who) const {
    return Node(crypto::key_from_seed(who), params, genesis);
  }
};

TEST(Node, PremineVisibleAtGenesis) {
  Harness h;
  Node node = h.make_node("n0");
  EXPECT_EQ(node.state().balance(crypto::address_of(h.alice.pub)),
            10'000'000u);
  EXPECT_EQ(node.height(), 0u);
}

TEST(Node, ProposeIncludesMempoolAndCommits) {
  Harness h;
  Node node = h.make_node("n0");
  const Transaction tx =
      make_transfer(h.alice, crypto::address_of(h.bob.pub), 500, 0);
  EXPECT_TRUE(node.submit(tx));
  EXPECT_FALSE(node.submit(tx));  // duplicate rejected

  const Block block = node.propose(1'000);
  ASSERT_EQ(block.txs.size(), 1u);
  EXPECT_EQ(node.receive(block), BlockVerdict::Accepted);
  EXPECT_EQ(node.height(), 1u);
  EXPECT_TRUE(node.tx_committed(tx.id()));
  EXPECT_EQ(node.state().balance(crypto::address_of(h.bob.pub)),
            10'000'500u);
  EXPECT_TRUE(node.mempool().empty());
}

TEST(Node, RejectsCorruptBlocks) {
  Harness h;
  Node node = h.make_node("n0");
  node.submit(make_transfer(h.alice, crypto::address_of(h.bob.pub), 1, 0));
  Block block = node.propose(1'000);

  Block bad_root = block;
  bad_root.txs.push_back(
      make_transfer(h.bob, crypto::address_of(h.alice.pub), 1, 0));
  EXPECT_EQ(node.receive(bad_root), BlockVerdict::Invalid);

  Block bad_height = block;
  bad_height.header.height = 9;
  bad_height.header.tx_root = bad_height.compute_tx_root();
  EXPECT_EQ(node.receive(bad_height), BlockVerdict::Invalid);

  EXPECT_EQ(node.receive(block), BlockVerdict::Accepted);
  EXPECT_EQ(node.receive(block), BlockVerdict::Duplicate);
}

TEST(Node, BlockWithInvalidTxRejectedEntirely) {
  Harness h;
  Node producer = h.make_node("producer");
  Node verifier = h.make_node("verifier");
  // Hand-craft a block holding an unaffordable transfer.
  Transaction bad;
  {
    const auto pauper = crypto::key_from_seed("pauper");
    bad = make_transfer(pauper, crypto::address_of(h.bob.pub), 1'000'000, 0);
  }
  Block block = producer.propose(1'000);
  block.txs.push_back(bad);
  block.header.tx_root = block.compute_tx_root();
  EXPECT_EQ(verifier.receive(block), BlockVerdict::Invalid);
  EXPECT_EQ(verifier.height(), 0u);
}

TEST(Node, OrphanHeldUntilParentArrives) {
  Harness h;
  Node producer = h.make_node("producer");
  Node late = h.make_node("late");

  producer.submit(
      make_transfer(h.alice, crypto::address_of(h.bob.pub), 1, 0));
  const Block b1 = producer.propose(1'000);
  ASSERT_EQ(producer.receive(b1), BlockVerdict::Accepted);
  const Block b2 = producer.propose(2'000);
  ASSERT_EQ(producer.receive(b2), BlockVerdict::Accepted);

  // Deliver out of order to the late node.
  EXPECT_EQ(late.receive(b2), BlockVerdict::Orphan);
  EXPECT_EQ(late.height(), 0u);
  EXPECT_EQ(late.receive(b1), BlockVerdict::Accepted);
  EXPECT_EQ(late.height(), 2u);  // orphan retried automatically
  EXPECT_EQ(late.tip(), b2.id());
}

TEST(Node, OrphanPoolEvictsOldestAtCap) {
  Harness h;
  h.params.max_orphans = 3;
  Node producer = h.make_node("producer");
  Node late = h.make_node("late");

  std::vector<Block> blocks;
  for (int i = 1; i <= 6; ++i) {
    blocks.push_back(producer.propose(i * 1'000));
    ASSERT_EQ(producer.receive(blocks.back()), BlockVerdict::Accepted);
  }

  // Feed blocks 2..6 (parents missing): the pool caps at 3, evicting the
  // oldest arrivals first.
  for (std::size_t i = 1; i < blocks.size(); ++i)
    EXPECT_EQ(late.receive(blocks[i]), BlockVerdict::Orphan);
  EXPECT_EQ(late.orphan_count(), 3u);
  EXPECT_EQ(late.counters().orphans_evicted, 2u);

  // Block 1 connects only the survivors (4,5,6): blocks 2 and 3 were
  // evicted, so the chain stops at height 1 until they are re-fetched —
  // exactly the gap SyncManager exists to fill.
  EXPECT_EQ(late.receive(blocks[0]), BlockVerdict::Accepted);
  EXPECT_EQ(late.height(), 1u);
  EXPECT_EQ(late.receive(blocks[1]), BlockVerdict::Accepted);
  EXPECT_EQ(late.receive(blocks[2]), BlockVerdict::Accepted);
  EXPECT_EQ(late.height(), 6u);  // cached orphans 4..6 retried through
  EXPECT_EQ(late.orphan_count(), 0u);
}

TEST(Node, DuplicateOrphanNotStoredTwice) {
  Harness h;
  Node producer = h.make_node("producer");
  Node late = h.make_node("late");
  ASSERT_EQ(producer.receive(producer.propose(1'000)), BlockVerdict::Accepted);
  const Block b2 = producer.propose(2'000);

  EXPECT_EQ(late.receive(b2), BlockVerdict::Orphan);
  EXPECT_EQ(late.receive(b2), BlockVerdict::Orphan);  // gossip duplicate
  EXPECT_EQ(late.orphan_count(), 1u);
  EXPECT_EQ(late.counters().orphans_evicted, 0u);
}

TEST(Node, LongerForkWinsReorg) {
  Harness h;
  Node node = h.make_node("n0");
  Node fork_builder = h.make_node("n1");

  // Main chain: one block with a transfer.
  node.submit(make_transfer(h.alice, crypto::address_of(h.bob.pub), 100, 0));
  const Block main1 = node.propose(1'000);
  ASSERT_EQ(node.receive(main1), BlockVerdict::Accepted);
  const Amount bob_after_main =
      node.state().balance(crypto::address_of(h.bob.pub));
  EXPECT_EQ(bob_after_main, 10'000'100u);

  // Competing fork (different proposer => different blocks): two blocks.
  const Block fork1 = fork_builder.propose(1'500);
  ASSERT_EQ(fork_builder.receive(fork1), BlockVerdict::Accepted);
  const Block fork2 = fork_builder.propose(2'500);
  ASSERT_EQ(fork_builder.receive(fork2), BlockVerdict::Accepted);

  // Node sees the fork: first block is a side chain, second triggers reorg.
  EXPECT_EQ(node.receive(fork1), BlockVerdict::AcceptedSide);
  EXPECT_EQ(node.receive(fork2), BlockVerdict::Accepted);
  EXPECT_EQ(node.height(), 2u);
  EXPECT_EQ(node.tip(), fork2.id());
  // The reorged-out transfer is undone.
  EXPECT_EQ(node.state().balance(crypto::address_of(h.bob.pub)),
            10'000'000u);
  EXPECT_FALSE(node.tx_committed(
      make_transfer(h.alice, crypto::address_of(h.bob.pub), 100, 0).id()));
}

TEST(Node, DuplicatedExecutionYieldsIdenticalState) {
  // The property the paper's transform exploits: since every node runs
  // every transaction, all honest nodes end in the same state.
  Harness h;
  std::vector<Node> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(h.make_node("n" + std::to_string(i)));

  Node& producer = nodes[0];
  for (std::uint64_t n = 0; n < 10; ++n)
    producer.submit(
        make_transfer(h.alice, crypto::address_of(h.bob.pub), 10 + n, n));
  const Block block = producer.propose(1'000);

  for (auto& node : nodes)
    EXPECT_EQ(node.receive(block), BlockVerdict::Accepted);
  const Hash256 reference = nodes[0].state().digest();
  std::uint64_t total_executed = 0;
  for (auto& node : nodes) {
    EXPECT_EQ(node.state().digest(), reference);
    total_executed += node.counters().txs_executed;
  }
  // 10 unique transactions, 5 nodes -> 50 executions: 5x duplication.
  EXPECT_EQ(total_executed, 50u);
}

TEST(Node, PowProductionGrindsAndValidates) {
  Harness h;
  h.params.consensus = ConsensusKind::ProofOfWork;
  h.params.pow_target = ~0ULL / 4;  // easy
  Node miner(crypto::key_from_seed("miner"), h.params,
             make_genesis("pow-test", h.params.pow_target));
  const auto mined = miner.produce_pow(1'000, 100'000);
  ASSERT_TRUE(mined.has_value());
  EXPECT_TRUE(meets_target(mined->id(), h.params.pow_target));
  EXPECT_GT(miner.counters().hash_attempts, 0u);
  EXPECT_EQ(miner.receive(*mined), BlockVerdict::Accepted);

  // A PoW node rejects blocks that miss the target.
  Block fake = miner.propose(2'000);
  fake.header.target = 0;  // impossible target recorded in header
  bool found_invalid = false;
  if (!meets_target(fake.id(), fake.header.target)) {
    EXPECT_EQ(miner.receive(fake), BlockVerdict::Invalid);
    found_invalid = true;
  }
  EXPECT_TRUE(found_invalid);
}

TEST(Node, ReceiptsTrackCommittedTransactions) {
  Harness h;
  Node node = h.make_node("n0");
  const Transaction t0 =
      make_transfer(h.alice, crypto::address_of(h.bob.pub), 10, 0);
  const Transaction t1 =
      make_transfer(h.alice, crypto::address_of(h.bob.pub), 20, 1);
  node.submit(t0);
  node.submit(t1);
  ASSERT_EQ(node.receive(node.propose(1'000)), BlockVerdict::Accepted);

  const auto r0 = node.receipt(t0.id());
  const auto r1 = node.receipt(t1.id());
  ASSERT_TRUE(r0.has_value() && r1.has_value());
  EXPECT_EQ(r0->height, 1u);
  EXPECT_EQ(r0->gas_used, h.params.transfer_gas);
  EXPECT_NE(r0->index, r1->index);  // distinct in-block positions
  EXPECT_FALSE(node.receipt(crypto::sha256("ghost")).has_value());
}

TEST(Node, ReceiptsVanishAfterReorg) {
  Harness h;
  Node node = h.make_node("n0");
  Node fork_builder = h.make_node("n1");

  const Transaction tx =
      make_transfer(h.alice, crypto::address_of(h.bob.pub), 100, 0);
  node.submit(tx);
  ASSERT_EQ(node.receive(node.propose(1'000)), BlockVerdict::Accepted);
  ASSERT_TRUE(node.receipt(tx.id()).has_value());

  // A longer empty fork reorgs the transfer out; its receipt disappears.
  for (int i = 0; i < 2; ++i) {
    const Block fb = fork_builder.propose(1'500 + 1'000 * i);
    ASSERT_EQ(fork_builder.receive(fb), BlockVerdict::Accepted);
    node.receive(fb);
  }
  EXPECT_EQ(node.height(), 2u);
  EXPECT_FALSE(node.receipt(tx.id()).has_value());
}

TEST(Node, AnchorTransactionsReachState) {
  Harness h;
  Node node = h.make_node("n0");
  const Hash256 digest = crypto::sha256("site-dataset");
  Transaction tx;
  tx.kind = TxKind::Anchor;
  tx.payload = Bytes(digest.data.begin(), digest.data.end());
  tx.gas_limit = 50'000;
  tx.sign_with(h.alice);
  ASSERT_TRUE(node.submit(tx));
  const Block block = node.propose(1'000);
  ASSERT_EQ(node.receive(block), BlockVerdict::Accepted);
  EXPECT_TRUE(node.state().anchored(crypto::address_of(h.alice.pub), digest));
}

}  // namespace
}  // namespace mc::chain
