// Monitor node, RPC envelope, and off-chain bridge tests.
#include <gtest/gtest.h>

#include "contracts/abi.hpp"
#include "contracts/analytics.hpp"
#include "contracts/policy.hpp"
#include "crypto/sha256.hpp"
#include "oracle/bridge.hpp"
#include "oracle/monitor.hpp"
#include "oracle/rpc.hpp"
#include "vm/assembler.hpp"

namespace mc::oracle {
namespace {

using contracts::Word;

TEST(Monitor, DispatchesByTopicWithCursor) {
  vm::ContractStore store;
  const Word id = store.deploy(
      vm::assemble("PUSH 5\nPUSH 100\nEMIT 0\nPUSH 6\nPUSH 200\nEMIT 0\nSTOP"),
      1, 1);

  MonitorNode monitor(store);
  std::vector<vm::Word> seen_topics;
  monitor.subscribe(100, [&](const vm::Event& e) {
    seen_topics.push_back(e.topic);
  });

  store.call(id, vm::ExecContext{});
  EXPECT_EQ(monitor.poll(), 1u);  // only topic 100 has a handler
  EXPECT_EQ(monitor.events_seen(), 2u);
  EXPECT_EQ(seen_topics, (std::vector<vm::Word>{100}));

  // Second poll sees nothing new.
  EXPECT_EQ(monitor.poll(), 0u);
  store.call(id, vm::ExecContext{});
  EXPECT_EQ(monitor.poll(), 1u);
  EXPECT_EQ(monitor.events_seen(), 4u);
}

TEST(Rpc, AuthenticatedCallRoundTrip) {
  RpcChannel channel(crypto::sha256("channel-key"));
  channel.handle("echo", [](BytesView payload) {
    return Bytes(payload.begin(), payload.end());
  });
  const RpcEnvelope call = channel.make_call("echo", to_bytes("ping"));
  const auto reply = channel.dispatch(call);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(to_string(BytesView(*reply)), "ping");
  EXPECT_EQ(channel.calls_served(), 1u);
}

TEST(Rpc, TamperedEnvelopeRejected) {
  RpcChannel channel(crypto::sha256("key"));
  channel.handle("m", [](BytesView) { return Bytes{}; });
  RpcEnvelope call = channel.make_call("m", to_bytes("data"));
  call.payload.push_back(0x99);
  EXPECT_FALSE(channel.dispatch(call).has_value());
  EXPECT_EQ(channel.calls_rejected(), 1u);
}

TEST(Rpc, ExactResendReplaysCachedReply) {
  RpcChannel channel(crypto::sha256("key"));
  int runs = 0;
  channel.handle("m", [&runs](BytesView) {
    ++runs;
    return to_bytes("result");
  });
  const RpcEnvelope call = channel.make_call("m", {});
  EXPECT_TRUE(channel.dispatch(call).has_value());
  // Same envelope again: the client lost the reply and retried. The
  // cached reply is served and the method body does NOT run twice.
  const auto again = channel.dispatch(call);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(to_string(BytesView(*again)), "result");
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(channel.calls_served(), 1u);
  EXPECT_EQ(channel.calls_replayed(), 1u);
  EXPECT_EQ(channel.calls_rejected(), 0u);
}

TEST(Rpc, OlderSequenceStillRejected) {
  RpcChannel channel(crypto::sha256("key"));
  channel.handle("m", [](BytesView) { return Bytes{}; });
  const RpcEnvelope first = channel.make_call("m", to_bytes("a"));
  const RpcEnvelope second = channel.make_call("m", to_bytes("b"));
  EXPECT_TRUE(channel.dispatch(first).has_value());
  EXPECT_TRUE(channel.dispatch(second).has_value());
  // `first` is now strictly older than the last served sequence: a true
  // replay, not an idempotent retry.
  EXPECT_FALSE(channel.dispatch(first).has_value());
  EXPECT_EQ(channel.calls_rejected(), 1u);
  EXPECT_EQ(channel.calls_replayed(), 0u);
}

TEST(Rpc, TamperedResendOfLastSequenceRejected) {
  RpcChannel channel(crypto::sha256("key"));
  channel.handle("m", [](BytesView) { return to_bytes("ok"); });
  RpcEnvelope call = channel.make_call("m", to_bytes("data"));
  EXPECT_TRUE(channel.dispatch(call).has_value());
  // Same sequence but altered payload: the tag no longer verifies, so it
  // must not hit the replay cache.
  call.payload.push_back(0x01);
  EXPECT_FALSE(channel.dispatch(call).has_value());
  EXPECT_EQ(channel.calls_replayed(), 0u);
}

TEST(Rpc, UnknownMethodRejected) {
  RpcChannel channel(crypto::sha256("key"));
  const RpcEnvelope call = channel.make_call("nope", {});
  EXPECT_FALSE(channel.dispatch(call).has_value());
}

class BridgeTest : public ::testing::Test {
 protected:
  static constexpr Word kHospital = 0x10;
  static constexpr Word kResearcher = 0x20;
  static constexpr Word kDataset = 0xd0;
  static constexpr Word kTool = 0x7;
  static constexpr Word kBridgeId = 0xb1;

  void SetUp() override {
    ASSERT_TRUE(analytics_.init(1, kBridgeId, policy_.id()));
    ASSERT_TRUE(policy_.register_dataset(kHospital, kDataset));
    bridge_.register_tool(kTool, [this](Word dataset, Word params) {
      ++tool_runs_;
      return dataset ^ params;  // deterministic fake result digest
    });
  }

  vm::ContractStore store_;
  contracts::PolicyContract policy_{store_, 1, 1};
  contracts::AnalyticsContract analytics_{store_, 1, 1};
  MonitorNode monitor_{store_};
  OffchainBridge bridge_{analytics_, policy_, monitor_, kBridgeId};
  int tool_runs_ = 0;
};

TEST_F(BridgeTest, EndToEndPermittedFlow) {
  ASSERT_TRUE(policy_.grant(kHospital, kDataset, kResearcher,
                            contracts::kPermCompute));
  EXPECT_TRUE(bridge_.submit_request(kResearcher, 1, kTool, kDataset, 0x5));
  EXPECT_EQ(analytics_.status(1), contracts::RequestStatus::Pending);

  EXPECT_EQ(bridge_.process_pending(), 1u);
  EXPECT_EQ(tool_runs_, 1);
  EXPECT_EQ(analytics_.status(1), contracts::RequestStatus::Done);
  EXPECT_EQ(analytics_.result(1), kDataset ^ 0x5u);
  EXPECT_EQ(bridge_.stats().requests_relayed, 1u);
  EXPECT_EQ(bridge_.stats().tasks_executed, 1u);
}

TEST_F(BridgeTest, DeniedWithoutComputePermission) {
  // Read-only permission is not enough for analytics.
  ASSERT_TRUE(
      policy_.grant(kHospital, kDataset, kResearcher, contracts::kPermRead));
  EXPECT_FALSE(bridge_.submit_request(kResearcher, 1, kTool, kDataset, 0x5));
  EXPECT_EQ(analytics_.status(1), contracts::RequestStatus::None);
  EXPECT_EQ(bridge_.process_pending(), 0u);
  EXPECT_EQ(bridge_.stats().requests_denied, 1u);
  EXPECT_EQ(tool_runs_, 0);
}

TEST_F(BridgeTest, RevocationCutsOffFutureRequests) {
  ASSERT_TRUE(policy_.grant(kHospital, kDataset, kResearcher,
                            contracts::kPermCompute));
  EXPECT_TRUE(bridge_.submit_request(kResearcher, 1, kTool, kDataset, 0x1));
  ASSERT_TRUE(policy_.revoke(kHospital, kDataset, kResearcher));
  EXPECT_FALSE(bridge_.submit_request(kResearcher, 2, kTool, kDataset, 0x2));
}

TEST_F(BridgeTest, UnknownToolCountedNotExecuted) {
  ASSERT_TRUE(policy_.grant(kHospital, kDataset, kResearcher,
                            contracts::kPermCompute));
  ASSERT_TRUE(
      bridge_.submit_request(kResearcher, 1, /*tool=*/0x999, kDataset, 0x1));
  EXPECT_EQ(bridge_.process_pending(), 0u);
  EXPECT_EQ(bridge_.stats().tasks_unknown_tool, 1u);
  EXPECT_EQ(analytics_.status(1), contracts::RequestStatus::Pending);
}

TEST_F(BridgeTest, ProcessPendingIdempotent) {
  ASSERT_TRUE(policy_.grant(kHospital, kDataset, kResearcher,
                            contracts::kPermCompute));
  ASSERT_TRUE(bridge_.submit_request(kResearcher, 1, kTool, kDataset, 0x1));
  EXPECT_EQ(bridge_.process_pending(), 1u);
  EXPECT_EQ(bridge_.process_pending(), 0u);  // nothing left
  EXPECT_EQ(tool_runs_, 1);
}

}  // namespace
}  // namespace mc::oracle
