// PBFT consensus tests: commit path, quorums, faults, view change.
#include <gtest/gtest.h>

#include "chain/pbft.hpp"
#include "crypto/sha256.hpp"

namespace mc::chain {
namespace {

sim::Network net_of(std::size_t n) { return sim::Network::uniform(n, 2); }

TEST(Pbft, RejectsTooSmallCluster) {
  EXPECT_THROW(PbftCluster(net_of(3)), std::invalid_argument);
}

TEST(Pbft, RejectsTooManyFaults) {
  EXPECT_THROW(PbftCluster(net_of(4), {}, {0, 1}), std::invalid_argument);
}

TEST(Pbft, CommitsSingleRequest) {
  PbftCluster cluster(net_of(4));
  cluster.submit(crypto::sha256("block-1"));
  cluster.run();
  ASSERT_EQ(cluster.commits().size(), 1u);
  EXPECT_GT(cluster.commits()[0].latency(), 0.0);
  EXPECT_EQ(cluster.view(), 0u);
}

TEST(Pbft, PrePrepareCheckVetoesBadDigests) {
  // Replicas consult the validation hook before endorsing a pre-prepare
  // (in the chain stack this is BlockValidator over the digest's block).
  const Hash256 good = crypto::sha256("validated-block");
  const Hash256 bad = crypto::sha256("invalid-block");

  PbftConfig config;
  config.preprepare_check = [&](const Hash256& digest) {
    return digest == good;
  };

  // Execution is in-order by sequence number, so a vetoed request stalls
  // everything behind it — exactly the point: the cluster must not build
  // on an invalid block. Use separate clusters for the two directions.
  PbftCluster vetoed(net_of(4), config);
  vetoed.submit(bad);
  vetoed.run(/*limit=*/10.0);
  EXPECT_TRUE(vetoed.commits().empty()) << "vetoed digest still committed";
  EXPECT_GT(vetoed.view(), 0u) << "replicas should have rotated the primary";

  PbftCluster accepting(net_of(4), config);
  accepting.submit(good);
  accepting.run();
  ASSERT_EQ(accepting.commits().size(), 1u);
  EXPECT_EQ(accepting.commits()[0].digest, good);
}

TEST(Pbft, QuorumIsTwoThirdsPlusOne) {
  PbftCluster c4(net_of(4));
  EXPECT_EQ(c4.max_faults(), 1u);
  EXPECT_EQ(c4.quorum(), 3u);
  PbftCluster c7(net_of(7));
  EXPECT_EQ(c7.max_faults(), 2u);
  EXPECT_EQ(c7.quorum(), 5u);
  PbftCluster c10(net_of(10));
  EXPECT_EQ(c10.max_faults(), 3u);
}

TEST(Pbft, MessageCountMatchesQuadraticFormula) {
  for (const std::size_t n : {4u, 7u, 10u}) {
    PbftCluster cluster(net_of(n));
    cluster.submit(crypto::sha256("b"));
    cluster.run();
    ASSERT_EQ(cluster.commits().size(), 1u) << "n=" << n;
    // All-honest, single view: exactly the textbook message pattern.
    EXPECT_EQ(cluster.messages_sent(), PbftCluster::expected_messages(n))
        << "n=" << n;
  }
}

TEST(Pbft, CommitsManySequentialRequests) {
  PbftCluster cluster(net_of(7));
  for (int i = 0; i < 20; ++i)
    cluster.submit(crypto::sha256("block-" + std::to_string(i)));
  cluster.run();
  EXPECT_EQ(cluster.commits().size(), 20u);
  // Sequence numbers are assigned in submission order.
  for (std::size_t i = 0; i < 20; ++i)
    EXPECT_EQ(cluster.commits()[i].seq, i + 1);
}

TEST(Pbft, ToleratesFaultyBackup) {
  PbftCluster cluster(net_of(4), {}, /*faulty=*/{2});
  cluster.submit(crypto::sha256("block"));
  cluster.run();
  EXPECT_EQ(cluster.commits().size(), 1u);
  EXPECT_EQ(cluster.view(), 0u);  // no view change needed
}

TEST(Pbft, FaultyPrimaryTriggersViewChange) {
  // Node 0 is the view-0 primary; crashing it forces rotation.
  PbftCluster cluster(net_of(4), {}, /*faulty=*/{0});
  cluster.submit(crypto::sha256("block"));
  cluster.run();
  ASSERT_EQ(cluster.commits().size(), 1u);
  EXPECT_GE(cluster.view(), 1u);
  // Commit latency includes the timeout that exposed the dead primary.
  EXPECT_GT(cluster.commits()[0].latency(), 1.0);
}

TEST(Pbft, SevenNodesTolerateTwoFaults) {
  PbftCluster cluster(net_of(7), {}, /*faulty=*/{1, 3});
  for (int i = 0; i < 5; ++i)
    cluster.submit(crypto::sha256("b" + std::to_string(i)));
  cluster.run();
  EXPECT_EQ(cluster.commits().size(), 5u);
}

TEST(Pbft, CheckpointsGarbageCollectSlots) {
  PbftConfig config;
  config.checkpoint_interval = 8;
  PbftCluster cluster(net_of(4), config);
  for (int i = 0; i < 40; ++i)
    cluster.submit(crypto::sha256("req-" + std::to_string(i)));
  cluster.run();
  ASSERT_EQ(cluster.commits().size(), 40u);
  for (sim::NodeId id = 0; id < 4; ++id) {
    // The latest stable checkpoint covers at least seq 32 (40 rounded
    // down to the interval), and collected slots stay bounded.
    EXPECT_GE(cluster.stable_checkpoint(id), 32u) << "replica " << id;
    EXPECT_LE(cluster.live_slots(id), 8u) << "replica " << id;
  }
}

TEST(Pbft, NoCheckpointBelowInterval) {
  PbftConfig config;
  config.checkpoint_interval = 100;
  PbftCluster cluster(net_of(4), config);
  for (int i = 0; i < 10; ++i)
    cluster.submit(crypto::sha256("r" + std::to_string(i)));
  cluster.run();
  EXPECT_EQ(cluster.stable_checkpoint(0), 0u);
  EXPECT_EQ(cluster.live_slots(0), 10u);
}

class PbftScaling : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PbftScaling, LatencyAndTrafficGrowWithN) {
  const std::size_t n = GetParam();
  PbftCluster cluster(net_of(n));
  cluster.submit(crypto::sha256("block"));
  cluster.run();
  ASSERT_EQ(cluster.commits().size(), 1u);
  EXPECT_EQ(cluster.messages_sent(), PbftCluster::expected_messages(n));
  EXPECT_GT(cluster.bytes_sent(),
            PbftCluster::expected_messages(n) * 100);  // >=100B/msg
}

INSTANTIATE_TEST_SUITE_P(Ns, PbftScaling,
                         ::testing::Values(4, 7, 10, 13, 16, 31));

TEST(Pbft, CrashedLeaderForcesViewChangeThenCommit) {
  PbftCluster cluster(net_of(4));
  cluster.crash(0);  // the view-0 primary goes down mid-run
  EXPECT_TRUE(cluster.down(0));
  cluster.submit(crypto::sha256("block"));
  cluster.run(/*limit=*/30.0);
  ASSERT_EQ(cluster.commits().size(), 1u);
  EXPECT_GE(cluster.view_changes(), 1u);
  EXPECT_GE(cluster.view(), 1u);
}

TEST(Pbft, RestartedReplicaStaysSilentUntilRejoin) {
  PbftCluster cluster(net_of(4));
  cluster.crash(0);
  cluster.restart(0);
  EXPECT_FALSE(cluster.down(0));
  EXPECT_TRUE(cluster.recovering(0));
  // Recovering replicas don't vote: with node 3 also down, only 2 of the
  // required 3 quorum members are live, so nothing can commit.
  cluster.crash(3);
  cluster.submit(crypto::sha256("stalled"));
  cluster.run(/*limit=*/20.0);
  EXPECT_TRUE(cluster.commits().empty());
}

TEST(Pbft, HealedLeaderRejoinsAndCompletesQuorum) {
  // Full crash-recovery round trip: the leader crashes (view change
  // commits without it), restarts, rejoins after "state transfer" — and
  // then a second fault makes the quorum depend on the healed node.
  PbftCluster cluster(net_of(4));
  cluster.crash(0);
  cluster.submit(crypto::sha256("b1"));
  cluster.run(/*limit=*/30.0);
  ASSERT_EQ(cluster.commits().size(), 1u);

  cluster.restart(0);
  cluster.rejoin(0);  // chain sync has replayed seq 1 for it
  EXPECT_FALSE(cluster.down(0));
  EXPECT_FALSE(cluster.recovering(0));

  cluster.crash(3);  // live set {0,1,2} — exactly the quorum of 3
  cluster.submit(crypto::sha256("b2"));
  cluster.run(/*limit=*/60.0);  // past the first run()'s clock
  ASSERT_EQ(cluster.commits().size(), 2u)
      << "commit required the healed ex-leader's vote";
  EXPECT_EQ(cluster.commits()[1].digest, crypto::sha256("b2"));
}

TEST(Pbft, CutLinksAreCountedAndToleratedWithinQuorum) {
  PbftCluster cluster(net_of(4));
  sim::LinkPolicy policy;
  // Node 3 is unreachable in both directions; the other three still form
  // a quorum and every blocked send is accounted for.
  policy.connected = [](sim::NodeId from, sim::NodeId to) {
    return from != 3 && to != 3;
  };
  cluster.set_link_policy(policy);
  cluster.submit(crypto::sha256("block"));
  cluster.run(/*limit=*/30.0);
  ASSERT_EQ(cluster.commits().size(), 1u);
  EXPECT_GT(cluster.messages_dropped(), 0u);
}

TEST(Pbft, ThroughputDegradesWithClusterSize) {
  // The paper's §I claim, measured: one request commits slower on a
  // bigger cluster (quadratic traffic + farther quorum).
  auto latency_of = [](std::size_t n) {
    PbftCluster cluster(net_of(n));
    cluster.submit(crypto::sha256("block"));
    cluster.run();
    return cluster.commits().at(0).latency();
  };
  EXPECT_LT(latency_of(4), latency_of(31));
}

}  // namespace
}  // namespace mc::chain
