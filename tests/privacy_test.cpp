// Differential-privacy and requested-schema result tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/transform.hpp"
#include "med/privacy.hpp"

namespace mc {
namespace {

TEST(Laplace, NoiseMomentsMatchScale) {
  Rng rng(5);
  constexpr double kScale = 2.0;
  double sum = 0, abs_sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double x = med::laplace_noise(rng, kScale);
    sum += x;
    abs_sum += std::abs(x);
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);          // zero-mean
  EXPECT_NEAR(abs_sum / kN, kScale, 0.05);   // E|X| = scale
}

TEST(Privatize, NoiseShrinksWithEpsilonAndN) {
  med::Aggregate big;
  for (int i = 0; i < 10'000; ++i) big.add(130.0 + (i % 40));
  const med::FieldBounds bounds{60, 260, 0};

  // Tight budget -> visible noise; generous budget -> near-exact.
  const auto loose = med::privatize(big, bounds, {0.01, 7});
  const auto tight = med::privatize(big, bounds, {10.0, 7});
  const double true_count = static_cast<double>(big.count);
  EXPECT_LT(std::abs(tight.count - true_count),
            std::abs(loose.count - true_count) + 1e-9);
  EXPECT_NEAR(tight.mean, big.mean, 1.0);
  // Mean stays inside the plausibility envelope even under heavy noise.
  EXPECT_GE(loose.mean, bounds.plausible_min);
  EXPECT_LE(loose.mean, bounds.plausible_max);
}

TEST(Privatize, DeterministicPerSeedAndEpsilonZeroExact) {
  med::Aggregate agg;
  agg.add(100);
  agg.add(140);
  const med::FieldBounds bounds{60, 260, 0};
  const auto a = med::privatize(agg, bounds, {1.0, 42});
  const auto b = med::privatize(agg, bounds, {1.0, 42});
  EXPECT_DOUBLE_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);

  const auto exact = med::privatize(agg, bounds, {0.0, 42});
  EXPECT_DOUBLE_EQ(exact.count, 2.0);
  EXPECT_DOUBLE_EQ(exact.mean, 120.0);
}

TEST(Privatize, UtilityAtRealisticScale) {
  // A hospital-scale count with epsilon=1 should have ~2 absolute error.
  med::Aggregate agg;
  for (int i = 0; i < 5'000; ++i) agg.add(120.0);
  const auto noisy =
      med::privatize(agg, med::bounds_for_field("systolic_bp"), {1.0, 9});
  EXPECT_NEAR(noisy.count, 5'000.0, 30.0);
  EXPECT_NEAR(noisy.mean, 120.0, 1.0);
}

class NetworkPrivacy : public ::testing::Test {
 protected:
  NetworkPrivacy() {
    core::TransformedNetworkConfig config;
    config.cohort.patients = 600;
    config.federation.hospital_count = 3;
    net_ = std::make_unique<core::TransformedNetwork>(config);
    net_->grant_researcher_everywhere();
  }
  std::unique_ptr<core::TransformedNetwork> net_;
};

TEST_F(NetworkPrivacy, PrivateAggregateQueryReturnsNoisyRelease) {
  const auto exact = net_->query_text("average of systolic_bp for smokers");
  ASSERT_TRUE(exact.has_value());
  EXPECT_FALSE(exact->noisy.has_value());

  const auto priv =
      net_->query_text("average of systolic_bp for smokers with privacy");
  ASSERT_TRUE(priv.has_value());
  ASSERT_TRUE(priv->noisy.has_value());
  EXPECT_DOUBLE_EQ(priv->noisy->epsilon, 1.0);
  // Noisy, but in the neighbourhood of the exact release.
  EXPECT_NEAR(priv->noisy->count, static_cast<double>(exact->aggregate.count),
              25.0);
  EXPECT_NEAR(priv->noisy->mean, exact->aggregate.mean, 10.0);
  // The exact value is still computed internally but the noisy release
  // differs from it (noise was actually applied).
  EXPECT_NE(priv->noisy->count,
            static_cast<double>(priv->aggregate.count));
}

TEST_F(NetworkPrivacy, EpsilonParsedFromQueryText) {
  const auto qv = learn::parse_query("count smokers epsilon 0.5");
  ASSERT_TRUE(qv.has_value());
  EXPECT_DOUBLE_EQ(qv->dp_epsilon, 0.5);
}

TEST_F(NetworkPrivacy, RequestedSchemaRowsUseLocalVocabulary) {
  auto qv = learn::parse_query("retrieve age for age over 70");
  ASSERT_TRUE(qv.has_value());
  qv->requested_schema = med::SchemaKind::HospitalLegacyA;
  const auto exec = net_->query(*qv);
  ASSERT_FALSE(exec.schema_rows.empty());
  // Rows carry legacy-A column names and units.
  bool has_age_col = false, has_chol_mmol = false;
  for (const auto& [name, value] : exec.schema_rows.front().fields) {
    if (name == "pat_age_yrs") {
      has_age_col = true;
      EXPECT_GT(value, 70.0);
    }
    if (name == "chol_mmol") {
      has_chol_mmol = true;
      EXPECT_LT(value, 15.0);  // mmol/L scale, not mg/dL
    }
  }
  EXPECT_TRUE(has_age_col);
  EXPECT_TRUE(has_chol_mmol);
  EXPECT_EQ(exec.schema_rows.size(),
            static_cast<std::size_t>(exec.rows_matched));
}

TEST(QueryVectorDigest, PrivacyAndSchemaAffectDigest) {
  learn::QueryVector a;
  a.task = learn::TaskKind::AggregateStats;
  a.aggregate_field = "age";
  learn::QueryVector b = a;
  b.dp_epsilon = 1.0;
  EXPECT_NE(a.digest(), b.digest());
  learn::QueryVector c = a;
  c.requested_schema = med::SchemaKind::HospitalLegacyB;
  EXPECT_NE(a.digest(), c.digest());
}

}  // namespace
}  // namespace mc
