// Property-based and fuzz-style tests across modules: VM robustness on
// arbitrary bytecode, serialization canonicality, supply conservation,
// mempool ordering invariants, PBFT liveness under random fault sets,
// VM arithmetic vs native semantics.
#include <gtest/gtest.h>

#include <cstddef>
#include <set>
#include <vector>

#include "chain/mempool.hpp"
#include "chain/pbft.hpp"
#include "chain/transaction.hpp"
#include "common/rng.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/schnorr.hpp"
#include "crypto/sha256.hpp"
#include "vm/assembler.hpp"
#include "vm/vm.hpp"

namespace mc {
namespace {

// --- VM never crashes on arbitrary bytecode ---------------------------

class VmFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmFuzz, ArbitraryBytecodeIsSafe) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    const Bytes code = rng.bytes(1 + rng.uniform(256));
    vm::Storage storage;
    storage[7] = 42;  // pre-existing state to protect
    const vm::Storage before = storage;

    vm::ExecContext ctx;
    ctx.gas_limit = 20'000;
    ctx.step_limit = 5'000;
    ctx.calldata = {1, 2, 3};
    vm::NullHost host;
    const vm::ExecResult result =
        vm::execute(BytesView(code), storage, ctx, host);

    EXPECT_LE(result.gas_used, ctx.gas_limit);
    EXPECT_LE(result.steps, ctx.step_limit + 1);
    // Failed executions must not leak partial writes.
    if (!result.ok()) {
      EXPECT_EQ(storage, before);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmFuzz, ::testing::Range<std::uint64_t>(1, 9));

// --- VM arithmetic agrees with native semantics ------------------------

class VmArithmetic : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VmArithmetic, MatchesNativeOps) {
  Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    const std::uint64_t a = rng.next();
    const std::uint64_t b = rng.next() | 1;  // avoid div-by-zero traps

    const struct {
      const char* op;
      std::uint64_t expected;
    } cases[] = {
        {"ADD", a + b},         {"SUB", a - b},
        {"MUL", a * b},         {"DIV", a / b},
        {"MOD", a % b},         {"AND", a & b},
        {"OR", a | b},          {"XOR", a ^ b},
        {"LT", a < b ? 1u : 0u}, {"GT", a > b ? 1u : 0u},
        {"EQ", a == b ? 1u : 0u},
    };
    for (const auto& c : cases) {
      const std::string source = "PUSH " + std::to_string(a) + "\nPUSH " +
                                 std::to_string(b) + "\n" + c.op +
                                 "\nRETURN 1";
      vm::Storage storage;
      vm::ExecContext ctx;
      vm::NullHost host;
      const auto result =
          vm::execute(BytesView(vm::assemble(source)), storage, ctx, host);
      ASSERT_TRUE(result.ok()) << c.op;
      EXPECT_EQ(result.returned.at(0), c.expected)
          << c.op << " a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmArithmetic,
                         ::testing::Range<std::uint64_t>(10, 14));

// --- Transaction encoding is canonical ---------------------------------

class TxCanonical : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TxCanonical, DecodeEncodeIsIdentity) {
  Rng rng(GetParam());
  const auto key = crypto::key_from_seed("fuzz-" + std::to_string(GetParam()));
  for (int round = 0; round < 100; ++round) {
    chain::Transaction tx;
    tx.kind = static_cast<chain::TxKind>(rng.uniform(4));
    tx.nonce = rng.next();
    tx.amount = rng.next();
    tx.gas_limit = rng.next();
    tx.gas_price = rng.next();
    tx.payload = rng.bytes(rng.uniform(64));
    tx.sign_with(key);

    const Bytes wire = tx.encode();
    const chain::Transaction decoded =
        chain::Transaction::decode(BytesView(wire));
    EXPECT_EQ(decoded.encode(), wire);
    EXPECT_EQ(decoded.id(), tx.id());
  }
}

TEST_P(TxCanonical, GarbageEitherThrowsOrRoundTrips) {
  Rng rng(GetParam() + 100);
  for (int round = 0; round < 300; ++round) {
    const Bytes garbage = rng.bytes(1 + rng.uniform(128));
    try {
      const chain::Transaction tx =
          chain::Transaction::decode(BytesView(garbage));
      // If it decoded, it must re-encode to exactly the input bytes
      // (canonical wire form admits no aliases).
      EXPECT_EQ(tx.encode(), garbage);
    } catch (const SerialError&) {
      // Expected for almost all inputs.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxCanonical,
                         ::testing::Range<std::uint64_t>(20, 24));

// --- Batch signature verification agrees with the per-sig scan ---------

class BatchVerifyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchVerifyProperty, RandomBatchesMatchSequentialVerdict) {
  // For random batches with random tamper patterns, crypto::batch_verify
  // must agree with a per-sig verify() scan on accept/reject AND on the
  // first-failing index. Tampers include the adversarial pair-shift that
  // cancels under unit coefficients (the z_i = 1 naive-scheme regression).
  Rng rng(GetParam());
  for (int round = 0; round < 25; ++round) {
    const std::size_t n = 1 + rng.uniform(96);
    std::vector<crypto::PrivateKey> keys;
    std::vector<Bytes> msgs;
    keys.reserve(n);
    msgs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      keys.push_back(crypto::generate_key(rng));
      msgs.push_back(rng.bytes(1 + rng.uniform(40)));
    }
    std::vector<crypto::BatchItem> items;
    items.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      items.push_back({keys[i].pub, BytesView(msgs[i]),
                       crypto::sign(keys[i], BytesView(msgs[i]))});

    const int tamper = static_cast<int>(rng.uniform(4));
    if (tamper == 1) {  // scattered bit flips
      for (std::size_t i = 0; i < n; ++i)
        if (rng.bernoulli(0.2))
          (rng.bernoulli(0.5) ? items[i].sig.s : items[i].sig.r) ^= 1;
    } else if (tamper == 2) {  // structural garbage at one index
      crypto::BatchItem& it = items[rng.uniform(n)];
      switch (rng.uniform(3)) {
        case 0: it.sig.s = crypto::SchnorrGroup::q + rng.uniform(99); break;
        case 1: it.sig.r = 0; break;
        default: it.key.y = rng.next(); break;
      }
    } else if (tamper == 3 && n >= 2) {  // z_i = 1 cancellation pair
      const std::size_t a = rng.uniform(n - 1);
      const std::size_t b = a + 1 + rng.uniform(n - a - 1);
      const std::uint64_t d = 1 + rng.uniform(crypto::SchnorrGroup::q - 1);
      items[a].sig.s = (items[a].sig.s + d) % crypto::SchnorrGroup::q;
      items[b].sig.s =
          (items[b].sig.s + crypto::SchnorrGroup::q - d) %
          crypto::SchnorrGroup::q;
    }

    std::ptrdiff_t expect = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (!crypto::verify(items[i].key, items[i].message, items[i].sig)) {
        expect = static_cast<std::ptrdiff_t>(i);
        break;
      }
    }
    const crypto::BatchResult res = crypto::batch_verify(items, rng);
    EXPECT_EQ(res.first_invalid, expect)
        << "n=" << n << " tamper=" << tamper << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchVerifyProperty,
                         ::testing::Range<std::uint64_t>(40, 46));

// --- Varint encoding is canonical --------------------------------------

class VarintCanonical : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VarintCanonical, EncodeDecodeIsIdentity) {
  Rng rng(GetParam());
  for (int round = 0; round < 2000; ++round) {
    // Bias toward boundary magnitudes: shift a random value so every
    // encoded length 1..10 is exercised.
    const std::uint64_t v = rng.next() >> rng.uniform(64);
    ByteWriter w;
    w.varint(v);
    ByteReader r(BytesView(w.data()));
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST_P(VarintCanonical, GarbageEitherThrowsOrReencodesIdentically) {
  // The anti-alias property behind content ids: any byte string that
  // decodes must re-encode to exactly itself, so two distinct wire forms
  // can never share a value (and thus an id).
  Rng rng(GetParam() + 500);
  for (int round = 0; round < 2000; ++round) {
    const Bytes garbage = rng.bytes(1 + rng.uniform(12));
    ByteReader r{BytesView(garbage)};
    try {
      const std::uint64_t v = r.varint();
      ByteWriter w;
      w.varint(v);
      const Bytes consumed(garbage.begin(),
                           garbage.begin() + static_cast<std::ptrdiff_t>(
                                                 garbage.size() - r.remaining()));
      EXPECT_EQ(w.data(), consumed)
          << "two distinct byte strings decode to one value";
    } catch (const SerialError&) {
      // Overlong or overflowing forms are rejected — that's the point.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VarintCanonical,
                         ::testing::Range<std::uint64_t>(30, 34));

// --- Ledger conservation ------------------------------------------------

class SupplyConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SupplyConservation, RandomTransfersConserveTotal) {
  Rng rng(GetParam());
  chain::ChainParams params;
  chain::WorldState state;

  std::vector<crypto::PrivateKey> keys;
  std::vector<std::uint64_t> nonces(6, 0);
  chain::Amount total = 0;
  for (int i = 0; i < 6; ++i) {
    keys.push_back(crypto::key_from_seed("acct" + std::to_string(i)));
    const chain::Amount funding = 1'000'000 + rng.uniform(1'000'000);
    state.credit(crypto::address_of(keys.back().pub), funding);
    total += funding;
  }
  const auto proposer = crypto::address_of(crypto::key_from_seed("prop").pub);

  for (int round = 0; round < 200; ++round) {
    const std::size_t from = rng.uniform(6);
    std::size_t to = rng.uniform(6);
    if (to == from) to = (to + 1) % 6;
    const chain::Transaction tx = chain::make_transfer(
        keys[from], crypto::address_of(keys[to].pub), 1 + rng.uniform(500),
        nonces[from]);
    if (state.apply(tx, proposer, params).ok) ++nonces[from];
  }

  chain::Amount after = proposer == chain::Address{}
                            ? 0
                            : state.balance(proposer);
  for (const auto& key : keys) after += state.balance(crypto::address_of(key.pub));
  EXPECT_EQ(after, total);  // fees moved to the proposer, nothing minted
}

INSTANTIATE_TEST_SUITE_P(Seeds, SupplyConservation,
                         ::testing::Range<std::uint64_t>(30, 34));

// --- Mempool selection invariants ----------------------------------------

class MempoolInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MempoolInvariants, SelectionIsNonceOrderedAndAffordable) {
  Rng rng(GetParam());
  chain::ChainParams params;
  chain::WorldState state;
  chain::Mempool pool;

  std::vector<crypto::PrivateKey> keys;
  for (int i = 0; i < 4; ++i) {
    keys.push_back(crypto::key_from_seed("m" + std::to_string(i)));
    state.credit(crypto::address_of(keys.back().pub),
                 500'000 + rng.uniform(100'000'000));
  }
  // Random txs, including nonce gaps and duplicates.
  for (int round = 0; round < 150; ++round) {
    const std::size_t who = rng.uniform(4);
    pool.add(chain::make_transfer(
        keys[who], crypto::address_of(keys[(who + 1) % 4].pub),
        1 + rng.uniform(2'000), rng.uniform(12), 1 + rng.uniform(9)));
  }

  const auto selected = pool.select(state, params, 100);
  std::unordered_map<chain::Address, std::uint64_t> expected_nonce;
  std::unordered_map<chain::Address, chain::Amount> budget;
  for (const auto& key : keys) {
    const auto addr = crypto::address_of(key.pub);
    expected_nonce[addr] = state.nonce(addr);
    budget[addr] = state.balance(addr);
  }
  for (const auto& tx : selected) {
    // Strict per-sender nonce sequence from the current state nonce.
    EXPECT_EQ(tx.nonce, expected_nonce[tx.from]) << "sender nonce order";
    ++expected_nonce[tx.from];
    // Affordable under worst-case fees at selection time.
    const chain::Amount cost = tx.amount + tx.gas_limit * tx.gas_price;
    ASSERT_GE(budget[tx.from], cost);
    budget[tx.from] -= cost;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MempoolInvariants,
                         ::testing::Range<std::uint64_t>(40, 45));

// --- PBFT liveness under random crash-fault sets -------------------------

class PbftFaults : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PbftFaults, CommitsDespiteAnyFFaults) {
  Rng rng(GetParam());
  const std::size_t n = 7;  // f = 2
  // Random fault set of size <= f.
  std::set<sim::NodeId> faulty;
  const std::size_t fault_count = rng.uniform(3);  // 0..2
  while (faulty.size() < fault_count)
    faulty.insert(static_cast<sim::NodeId>(rng.uniform(n)));

  chain::PbftCluster cluster(sim::Network::uniform(n, 3), {}, faulty);
  for (int i = 0; i < 5; ++i)
    cluster.submit(crypto::sha256("req-" + std::to_string(i)));
  cluster.run();
  EXPECT_EQ(cluster.commits().size(), 5u)
      << "faults=" << faulty.size();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbftFaults,
                         ::testing::Range<std::uint64_t>(50, 60));

// --- Sealed-box round trips over random sizes ----------------------------

class SealSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SealSweep, RandomPayloadsRoundTripAndRejectTamper) {
  Rng rng(GetParam());
  const auto key = crypto::key_from_hash(crypto::sha256("k"));
  for (int round = 0; round < 50; ++round) {
    const Bytes msg = rng.bytes(rng.uniform(2'000));
    const auto box =
        crypto::seal(key, crypto::nonce_from_counter(rng.next()), BytesView(msg));
    const auto opened = crypto::open(key, box);
    ASSERT_TRUE(opened.has_value());
    EXPECT_EQ(*opened, msg);
    if (!box.ciphertext.empty()) {
      auto tampered = box;
      tampered.ciphertext[rng.uniform(tampered.ciphertext.size())] ^= 0x80;
      EXPECT_FALSE(crypto::open(key, tampered).has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SealSweep,
                         ::testing::Range<std::uint64_t>(70, 74));

}  // namespace
}  // namespace mc
