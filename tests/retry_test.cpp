// RetryPolicy / CircuitBreaker / RetryingClient tests: backoff schedule,
// breaker state machine, and end-to-end idempotent retry over a lossy
// transport in front of an RpcChannel.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "crypto/sha256.hpp"
#include "oracle/retry.hpp"
#include "oracle/rpc.hpp"

namespace mc::oracle {
namespace {

TEST(RetryPolicy, CappedExponentialSchedule) {
  RetryConfig cfg;
  cfg.backoff_base_s = 0.05;
  cfg.backoff_multiplier = 2.0;
  cfg.backoff_max_s = 0.3;
  RetryPolicy policy(cfg);

  EXPECT_DOUBLE_EQ(policy.backoff(0), 0.0);  // the first try never waits
  EXPECT_DOUBLE_EQ(policy.backoff(1), 0.05);
  EXPECT_DOUBLE_EQ(policy.backoff(2), 0.10);
  EXPECT_DOUBLE_EQ(policy.backoff(3), 0.20);
  EXPECT_DOUBLE_EQ(policy.backoff(4), 0.30);  // capped
  EXPECT_DOUBLE_EQ(policy.backoff(9), 0.30);
}

TEST(RetryPolicy, JitterStaysWithinConfiguredBand) {
  RetryConfig cfg;
  cfg.jitter_frac = 0.25;
  RetryPolicy policy(cfg);
  Rng rng(99);
  for (std::size_t retry = 1; retry <= 6; ++retry) {
    const double base = policy.backoff(retry);
    for (int draw = 0; draw < 50; ++draw) {
      const double jittered = policy.backoff_jittered(retry, rng);
      EXPECT_GE(jittered, base);
      EXPECT_LE(jittered, base * 1.25 + 1e-12);
    }
  }
}

TEST(CircuitBreaker, OpensAfterThresholdAndProbesHalfOpen) {
  CircuitBreaker breaker(/*threshold=*/3, /*cooldown_s=*/1.0);
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_TRUE(breaker.allow(0.0));

  breaker.on_failure(0.0);
  breaker.on_failure(0.1);
  EXPECT_EQ(breaker.state(), BreakerState::Closed);  // streak of 2 < 3
  breaker.on_failure(0.2);
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_EQ(breaker.opens(), 1u);

  EXPECT_FALSE(breaker.allow(0.5));   // still cooling down
  EXPECT_TRUE(breaker.allow(1.3));    // cooldown elapsed: one probe
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);

  breaker.on_failure(1.3);            // probe failed: straight back to Open
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_EQ(breaker.opens(), 2u);

  EXPECT_TRUE(breaker.allow(2.5));
  breaker.on_success();               // probe succeeded: closed, streak reset
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  breaker.on_failure(2.6);
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreaker breaker(/*threshold=*/2, /*cooldown_s=*/1.0);
  breaker.on_failure(0.0);
  breaker.on_failure(0.1);  // opened at 0.1
  ASSERT_EQ(breaker.state(), BreakerState::Open);

  // Cooldown elapses: the first caller becomes the probe, and every
  // other caller fast-fails while that probe is in flight.
  EXPECT_TRUE(breaker.allow(1.2));
  EXPECT_EQ(breaker.state(), BreakerState::HalfOpen);
  EXPECT_FALSE(breaker.allow(1.2));
  EXPECT_FALSE(breaker.allow(1.8));

  // Probe succeeds: closed, and traffic flows freely again.
  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
  EXPECT_TRUE(breaker.allow(1.9));
  EXPECT_TRUE(breaker.allow(1.9));

  // Re-open and fail the probe: the breaker re-opens with a *full*
  // cooldown from the probe failure, not a leftover from the first open.
  breaker.on_failure(2.0);
  breaker.on_failure(2.1);
  ASSERT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_TRUE(breaker.allow(3.2));   // the probe
  breaker.on_failure(3.2);           // probe fails
  EXPECT_EQ(breaker.state(), BreakerState::Open);
  EXPECT_FALSE(breaker.allow(4.1));  // 0.9 s into the fresh cooldown
  EXPECT_TRUE(breaker.allow(4.3));   // full cooldown elapsed: next probe
  EXPECT_FALSE(breaker.allow(4.3));  // ...still one at a time
  breaker.on_success();
  EXPECT_EQ(breaker.state(), BreakerState::Closed);
}

struct ClientHarness {
  RpcChannel channel{crypto::sha256("bridge-key")};
  int method_runs = 0;

  ClientHarness() {
    channel.handle("compute", [this](BytesView payload) {
      ++method_runs;
      Bytes reply(payload.begin(), payload.end());
      reply.push_back(0xAA);
      return reply;
    });
  }
};

TEST(RetryingClient, SucceedsAfterTransientLosses) {
  ClientHarness h;
  int sends = 0;
  // Requests 1 and 2 vanish on the wire; the third reaches the server.
  RetryingClient client(h.channel,
                        [&](const RpcEnvelope& env) -> std::optional<Bytes> {
                          if (++sends < 3) return std::nullopt;
                          return h.channel.dispatch(env);
                        });
  const auto reply = client.call("compute", {0x01});
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(h.method_runs, 1);
  EXPECT_EQ(client.stats().attempts, 3u);
  EXPECT_EQ(client.stats().retries, 2u);
  EXPECT_EQ(client.stats().succeeded, 1u);
  EXPECT_GT(client.now_s(), 0.0);  // backoffs advanced the virtual clock
}

TEST(RetryingClient, LostReplyIsReplayedNotReExecuted) {
  ClientHarness h;
  bool reply_dropped = false;
  // The server EXECUTES the first attempt but its reply is lost in
  // transit. The retry re-sends the identical envelope, so the channel's
  // replay cache answers without running the method a second time.
  RetryingClient client(h.channel,
                        [&](const RpcEnvelope& env) -> std::optional<Bytes> {
                          auto reply = h.channel.dispatch(env);
                          if (!reply_dropped) {
                            reply_dropped = true;
                            return std::nullopt;
                          }
                          return reply;
                        });
  const auto reply = client.call("compute", {0x07});
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->back(), 0xAA);
  EXPECT_EQ(h.method_runs, 1);  // exactly-once execution
  EXPECT_EQ(h.channel.calls_served(), 1u);
  EXPECT_EQ(h.channel.calls_replayed(), 1u);
  EXPECT_EQ(client.stats().retries, 1u);
}

TEST(RetryingClient, GivesUpAfterMaxAttempts) {
  ClientHarness h;
  RetryConfig cfg;
  cfg.max_attempts = 3;
  int sends = 0;
  RetryingClient client(h.channel,
                        [&](const RpcEnvelope&) -> std::optional<Bytes> {
                          ++sends;
                          return std::nullopt;
                        },
                        cfg);
  EXPECT_FALSE(client.call("compute", {}).has_value());
  EXPECT_EQ(sends, 3);
  EXPECT_EQ(client.stats().failed, 1u);
  EXPECT_EQ(h.method_runs, 0);
}

TEST(RetryingClient, DeadlineCutsRetriesShort) {
  ClientHarness h;
  RetryConfig cfg;
  cfg.max_attempts = 50;
  cfg.backoff_base_s = 1.0;
  cfg.backoff_max_s = 8.0;
  cfg.deadline_s = 2.5;  // admits the 1s wait, not the following 2s one
  cfg.jitter_frac = 0.0;
  cfg.breaker_threshold = 100;  // keep the breaker out of this test
  RetryingClient client(h.channel,
                        [](const RpcEnvelope&) { return std::nullopt; }, cfg);
  EXPECT_FALSE(client.call("compute", {}).has_value());
  EXPECT_EQ(client.stats().deadline_giveups, 1u);
  EXPECT_LT(client.stats().attempts, 5u);
  EXPECT_LE(client.now_s(), cfg.deadline_s);
}

TEST(RetryingClient, BreakerFastFailsWhileServiceIsDown) {
  ClientHarness h;
  RetryConfig cfg;
  cfg.max_attempts = 2;
  cfg.breaker_threshold = 3;
  cfg.breaker_cooldown_s = 100.0;  // longer than any backoff here
  bool service_up = false;
  RetryingClient client(h.channel,
                        [&](const RpcEnvelope& env) -> std::optional<Bytes> {
                          if (!service_up) return std::nullopt;
                          return h.channel.dispatch(env);
                        },
                        cfg);

  EXPECT_FALSE(client.call("compute", {}).has_value());  // 2 failures
  EXPECT_FALSE(client.call("compute", {}).has_value());  // 3rd opens it
  EXPECT_EQ(client.breaker().state(), BreakerState::Open);

  service_up = true;  // too late: the breaker is open and cooling down
  EXPECT_FALSE(client.call("compute", {}).has_value());
  EXPECT_GE(client.stats().breaker_fastfails, 1u);
  EXPECT_EQ(h.method_runs, 0);
}

}  // namespace
}  // namespace mc::oracle
