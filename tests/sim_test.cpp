// Simulation substrate tests: event queue, network model, energy meter.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sim/energy.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"

namespace mc::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(3.0, [&] { order.push_back(3); });
  queue.schedule_at(1.0, [&] { order.push_back(1); });
  queue.schedule_at(2.0, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertion) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    queue.schedule_at(1.0, [&order, i] { order.push_back(i); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue queue;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) queue.schedule_in(1.0, chain);
  };
  queue.schedule_in(1.0, chain);
  queue.run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(queue.now(), 10.0);
}

TEST(EventQueue, RunLimitStopsEarly) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(1.0, [&] { ++fired; });
  queue.schedule_at(100.0, [&] { ++fired; });
  queue.run(10.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(queue.pending(), 1u);
  // Events remain past the limit: the clock stays at the last event.
  EXPECT_DOUBLE_EQ(queue.now(), 1.0);
}

TEST(EventQueue, FiniteLimitAdvancesClockWhenDrained) {
  EventQueue queue;
  queue.schedule_at(1.0, [] {});
  queue.run(10.0);
  EXPECT_TRUE(queue.empty());
  EXPECT_DOUBLE_EQ(queue.now(), 10.0);          // horizon reached
  EXPECT_DOUBLE_EQ(queue.last_event_at(), 1.0); // but nothing ran past 1.0
  // Scheduling relative to the advanced clock works.
  queue.schedule_in(5.0, [] {});
  queue.run(20.0);
  EXPECT_DOUBLE_EQ(queue.last_event_at(), 15.0);
}

TEST(EventQueue, DefaultRunLeavesClockAtLastEvent) {
  EventQueue queue;
  queue.schedule_at(7.0, [] {});
  queue.run();  // kNoLimit: drain without fast-forwarding
  EXPECT_DOUBLE_EQ(queue.now(), 7.0);
  EXPECT_DOUBLE_EQ(queue.last_event_at(), 7.0);
}

TEST(EventQueue, StepDoesNotCopyHandlerState) {
  // Handlers are held behind shared_ptr: executing the front event must
  // not duplicate closure state. Observe via a copy-counting payload.
  struct CopyCounter {
    int* copies;
    explicit CopyCounter(int* c) : copies(c) {}
    CopyCounter(const CopyCounter& other) : copies(other.copies) {
      ++*copies;
    }
    CopyCounter(CopyCounter&&) = default;
    void operator()() const {}
  };
  int copies = 0;
  EventQueue queue;
  queue.schedule_at(1.0, std::function<void()>(CopyCounter(&copies)));
  const int copies_after_schedule = copies;
  queue.step();
  EXPECT_EQ(copies, copies_after_schedule);  // step() added zero copies
  EXPECT_EQ(queue.executed(), 1u);
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue queue;
  queue.schedule_at(5.0, [] {});
  queue.run();
  EXPECT_THROW(queue.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, ResetClearsState) {
  EventQueue queue;
  queue.schedule_at(1.0, [] {});
  queue.reset();
  EXPECT_TRUE(queue.empty());
  EXPECT_DOUBLE_EQ(queue.now(), 0.0);
}

TEST(Network, LanFasterThanWan) {
  Network net = Network::uniform(4, 2);  // nodes 0,2 region 0; 1,3 region 1
  const double lan = net.delay(0, 2, 0);
  const double wan = net.delay(0, 1, 0);
  EXPECT_LT(lan, wan);
  EXPECT_DOUBLE_EQ(net.delay(1, 1, 1000), 0.0);  // self-delivery free
}

TEST(Network, SerializationDelayScalesWithBytes) {
  Network net = Network::uniform(2, 1);
  const double small = net.delay(0, 1, 1'000);
  const double big = net.delay(0, 1, 1'000'000);
  EXPECT_GT(big, small);
  // The marginal cost of the extra bytes is bytes/bandwidth.
  EXPECT_NEAR(big - small, 999'000.0 / net.config().default_bandwidth, 1e-9);
}

TEST(Network, JitterBoundedAndDeterministic) {
  Network net = Network::uniform(2, 2);
  Rng rng_a(9), rng_b(9);
  for (int i = 0; i < 100; ++i) {
    const double base = net.delay(0, 1, 500);
    const double jittered = net.delay_jittered(0, 1, 500, rng_a);
    EXPECT_GE(jittered, base * (1.0 - net.config().jitter_frac) - 1e-12);
    EXPECT_LE(jittered, base * (1.0 + net.config().jitter_frac) + 1e-12);
    EXPECT_DOUBLE_EQ(jittered, net.delay_jittered(0, 1, 500, rng_b));
  }
}

TEST(Network, BroadcastCostsScaleWithSize) {
  Network small = Network::uniform(4, 2);
  Network large = Network::uniform(32, 2);
  EXPECT_LT(small.broadcast_time(0, 4096), large.broadcast_time(0, 4096));
  EXPECT_EQ(small.broadcast_bytes(100), 300u);
  EXPECT_EQ(large.broadcast_bytes(100), 3100u);
}

TEST(Network, CustomBandwidthNode) {
  Network net;
  const NodeId fast = net.add_node(0, 1e9);
  const NodeId slow = net.add_node(0, 1e6);
  // Bottleneck is the min of uplink/downlink.
  EXPECT_NEAR(net.delay(fast, slow, 1'000'000) - net.config().lan_latency_s,
              1.0, 1e-9);
}

TEST(Energy, ChargesAccumulatePerCategory) {
  EnergyMeter meter;
  meter.charge_hashes(0, 1'000'000);
  meter.charge_vm(1, 500'000);
  meter.charge_network(0, 1 << 20);
  meter.charge_flops(2, 1'000'000'000);
  meter.charge_idle(2, 10.0);

  const auto& model = meter.model();
  EXPECT_DOUBLE_EQ(meter.total_hash(), 1e6 * model.joules_per_hash);
  EXPECT_DOUBLE_EQ(meter.total_vm(), 5e5 * model.joules_per_vm_instr);
  EXPECT_DOUBLE_EQ(meter.total_network(),
                   static_cast<double>(1 << 20) * model.joules_per_byte_sent);
  EXPECT_DOUBLE_EQ(meter.total_compute(), 1e9 * model.joules_per_flop);
  EXPECT_DOUBLE_EQ(meter.total_idle(), 10.0 * model.idle_watts_per_node);
  EXPECT_DOUBLE_EQ(meter.total(),
                   meter.total_hash() + meter.total_vm() +
                       meter.total_network() + meter.total_compute() +
                       meter.total_idle());
}

TEST(Energy, PerNodeAttribution) {
  EnergyMeter meter;
  meter.charge_hashes(3, 100);
  EXPECT_GT(meter.node_total(3), 0.0);
  EXPECT_DOUBLE_EQ(meter.node_total(0), 0.0);
  EXPECT_DOUBLE_EQ(meter.node_total(99), 0.0);  // never charged
}

TEST(Energy, FormatJoulesUnits) {
  EXPECT_EQ(format_joules(1.0), "1.00 J");
  EXPECT_EQ(format_joules(1'500.0), "1.50 kJ");
  EXPECT_EQ(format_joules(2.5e6), "2.50 MJ");
  EXPECT_EQ(format_joules(3.0e9), "3.00 GJ");
}

}  // namespace
}  // namespace mc::sim
