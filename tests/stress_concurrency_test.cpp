// TSan-targeted concurrency stress tests.
//
// Sized to keep the suite fast while still forcing real interleavings:
// ThreadPool submit/shutdown races, concurrent mempool ingest from many
// feeder threads against a selecting consensus thread, and parallel
// off-chain analytics fanned out through the move-compute scheduler.
// Run these under the `tsan` preset to get the actual race checking.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chain/block.hpp"
#include "chain/block_validator.hpp"
#include "chain/execution/executor.hpp"
#include "chain/faultsim.hpp"
#include "chain/mempool.hpp"
#include "chain/node.hpp"
#include "chain/transaction.hpp"
#include "chain/vm_hook.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/fabric/fabric.hpp"
#include "core/fabric/run_board.hpp"
#include "core/scheduler.hpp"
#include "crypto/schnorr.hpp"
#include "vm/assembler.hpp"

namespace mc {
namespace {

TEST(StressConcurrency, ThreadPoolSubmitShutdownRace) {
  // Repeatedly tear pools down while feeder threads are mid-submit; every
  // accepted task must run, every rejected submit must throw cleanly.
  for (int round = 0; round < 8; ++round) {
    std::atomic<int> executed{0};
    std::atomic<int> rejected{0};
    auto pool = std::make_unique<ThreadPool>(2);

    std::vector<std::thread> feeders;
    std::atomic<bool> go{false};
    for (int t = 0; t < 3; ++t) {
      feeders.emplace_back([&] {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < 50; ++i) {
          try {
            pool->submit([&executed] { ++executed; });
          } catch (const std::runtime_error&) {
            ++rejected;
          }
        }
      });
    }
    go = true;
    std::this_thread::yield();
    pool->stop();  // race the feeders; accepted work still drains
    for (auto& f : feeders) f.join();
    pool.reset();
    EXPECT_EQ(executed.load() + rejected.load(), 3 * 50);
  }
}

TEST(StressConcurrency, ParallelForFromMultipleThreads) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&pool, &total] {
      for (int round = 0; round < 10; ++round)
        pool.parallel_for(32, [&total](std::size_t i) { total += i + 1; });
    });
  }
  for (auto& c : callers) c.join();
  // 4 callers x 10 rounds x sum(1..32)
  EXPECT_EQ(total.load(), 4u * 10u * (32u * 33u / 2u));
}

TEST(StressConcurrency, ConcurrentMempoolIngestAndSelect) {
  chain::ChainParams params;
  chain::WorldState state;

  // Pre-sign everything; signing is deterministic and single-threaded.
  const int kSenders = 4;
  const int kTxPerSender = 25;
  std::vector<std::vector<chain::Transaction>> txs(kSenders);
  for (int s = 0; s < kSenders; ++s) {
    auto key = crypto::key_from_seed("stress-sender-" + std::to_string(s));
    state.credit(crypto::address_of(key.pub), 100'000'000);
    for (int i = 0; i < kTxPerSender; ++i)
      txs[s].push_back(chain::make_transfer(
          key, crypto::address_of(key.pub), /*amount=*/1,
          /*nonce=*/static_cast<std::uint64_t>(i)));
  }

  chain::Mempool pool;
  std::atomic<bool> stop_selecting{false};
  std::atomic<int> accepted{0};

  // Consensus thread: continuously select + probe while feeders ingest.
  std::thread selector([&] {
    while (!stop_selecting.load()) {
      const auto picked = pool.select(state, params, 64);
      EXPECT_LE(picked.size(), 64u);
      (void)pool.size();
      (void)pool.contains(txs[0][0].id());
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> feeders;
  for (int s = 0; s < kSenders; ++s) {
    feeders.emplace_back([&pool, &txs, s, &accepted] {
      for (const auto& tx : txs[s])
        if (pool.add(tx)) ++accepted;
    });
  }
  for (auto& f : feeders) f.join();
  stop_selecting = true;
  selector.join();

  EXPECT_EQ(accepted.load(), kSenders * kTxPerSender);
  EXPECT_EQ(pool.size(), static_cast<std::size_t>(kSenders * kTxPerSender));

  // Snapshot + remove race-free postcondition: removing every snapshotted
  // tx empties the pool.
  pool.remove(pool.snapshot());
  EXPECT_TRUE(pool.empty());
}

TEST(StressConcurrency, ParallelOffchainAnalyticsViaScheduler) {
  // Each worker runs an independent placement over its own site fleet
  // (schedulers are single-owner by design) and publishes aggregate
  // statistics through atomics — the fan-out pattern the transformed
  // architecture uses for per-site analytics.
  ThreadPool pool(4);
  const std::size_t kWorkers = 8;
  std::atomic<std::uint64_t> placements{0};
  std::atomic<std::uint64_t> hub_moves{0};

  pool.parallel_for(kWorkers, [&](std::size_t w) {
    std::vector<core::SchedSite> sites(4, core::SchedSite{1e10, 0.0});
    core::MoveComputeScheduler sched(sites, core::SchedSite{1e11, 0.0});
    std::vector<core::SchedTask> tasks;
    for (std::size_t i = 0; i < 32; ++i) {
      core::SchedTask task;
      task.id = "w" + std::to_string(w) + "-t" + std::to_string(i);
      task.data_site = i % sites.size();
      task.flops = 1e9 * static_cast<double>(1 + i % 7);
      task.data_bytes = 1 << 16;
      task.hub_only = (i % 11 == 0);
      tasks.push_back(task);
    }
    const core::Schedule schedule = sched.schedule(tasks);
    placements += schedule.placements.size();
    hub_moves += schedule.moved_to_hub;
  });

  EXPECT_EQ(placements.load(), kWorkers * 32u);
  EXPECT_GE(hub_moves.load(), kWorkers * 3u);  // the hub_only tasks at least
}

TEST(StressConcurrency, FabricLeaseSpeculationChurn) {
  // Each worker thread owns an independent ComputeFabric (fabrics are
  // single-owner by design — the event loop is single-threaded) running
  // the same crash+straggler scenario, and posts its report into one
  // shared FabricRunBoard (the annotated fan-in guarded by clang's
  // -Wthread-safety leg). TSan probes the parallel_for fan-out; the
  // postcondition pins full determinism: every same-seeded run must
  // produce the same record even with lease churn, revocations and
  // speculative duplicates in play.
  ThreadPool pool(4);
  const std::size_t kRuns = 8;
  core::fabric::FabricRunBoard board;

  pool.parallel_for(kRuns, [&board](std::size_t) {
    core::fabric::FabricConfig config;
    config.workers = 6;
    config.seed = 0x57e;
    config.space.lease_s = 0.3;
    config.straggler_frac = 0.3;
    config.straggler_slowdown = 10.0;
    config.faults.crash(0, 0.2, 2.0).crash(1, 0.5, 2.5);
    core::fabric::ComputeFabric fabric(config);
    for (std::size_t i = 0; i < 300; ++i)
      fabric.submit("t" + std::to_string(i), 10'000'000, 0,
                    static_cast<sim::NodeId>(i % config.workers));
    board.post(fabric.run());
  });

  EXPECT_EQ(board.runs(), kRuns);
  EXPECT_TRUE(board.fingerprints_agree());
  EXPECT_EQ(board.total_commits(), kRuns * 300u);
  EXPECT_GT(board.total_recoveries(), 0u);  // the faults actually bit
  EXPECT_EQ(board.total_poisoned(), 0u);
}

TEST(StressConcurrency, BlockValidatorHammeredFromManyThreads) {
  // Many consensus threads validating the same decoded blocks through one
  // shared pool-backed validator. Exercises (a) concurrent parallel_for
  // fan-out on a shared ThreadPool and (b) concurrent id() cache hits on
  // shared Transaction objects — both must be TSan-clean.
  const auto sender = crypto::key_from_seed("stress-bv-sender");
  const chain::Address to =
      crypto::address_of(crypto::key_from_seed("stress-bv-to").pub);

  chain::Block good;
  for (std::size_t i = 0; i < 48; ++i)
    good.txs.push_back(chain::make_transfer(sender, to, 1 + i, i));
  good.header.tx_root = good.compute_tx_root();

  chain::Block bad = good;
  bad.txs[29].sig.s ^= 1;
  bad.header.tx_root = bad.compute_tx_root();
  // Re-warm ids on the mutated tx before sharing across threads (direct
  // field mutation requires the first id() call to be single-threaded).
  (void)bad.txs[29].id();

  // Decoded copies share nothing with the originals; validate those too.
  const chain::Block good_decoded =
      chain::Block::decode(BytesView(good.encode()));

  ThreadPool pool(4);
  const chain::BlockValidator validator(&pool, /*min_parallel_txs=*/1);

  constexpr std::size_t kThreads = 8;
  constexpr int kRounds = 25;
  std::atomic<std::size_t> ok_good{0}, ok_decoded{0}, bad_at_29{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        if (validator.validate(good).ok()) ++ok_good;
        if (validator.validate(good_decoded).ok()) ++ok_decoded;
        const chain::BlockValidation v = validator.validate(bad);
        if (v.first_invalid_tx == 29 && v.tx_root_ok) ++bad_at_29;
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(ok_good.load(), kThreads * kRounds);
  EXPECT_EQ(ok_decoded.load(), kThreads * kRounds);
  EXPECT_EQ(bad_at_29.load(), kThreads * kRounds);
}

TEST(StressConcurrency, FaultSimUnderRandomCrashesStaysConsistent) {
  // The whole fault stack — injector, PBFT crash-recovery, gossip, chain
  // sync — on top of the pool-backed BlockValidator. The event loop is
  // single-threaded; the races TSan should probe are in the validator
  // fan-out under a randomized crash/partition schedule.
  chain::FaultSimConfig config;
  config.node_count = 8;
  config.regions = 2;
  config.client_count = 4;
  config.tx_count = 40;
  config.tx_rate_per_s = 20.0;
  config.sim_limit_s = 60.0;
  config.seed = 7;
  config.faults = sim::FaultPlan::random(
      /*seed=*/7, /*regions=*/2, /*nodes=*/8, /*horizon_s=*/40.0,
      /*crash_rate_per_node_s=*/0.01, /*mean_downtime_s=*/4.0,
      /*partition_rate_per_s=*/0.02, /*mean_partition_s=*/5.0);

  const chain::FaultSimReport report = chain::run_fault_sim(config);
  EXPECT_GT(report.blocks_committed, 0u);
  EXPECT_TRUE(report.live_nodes_agree);
  EXPECT_LE(report.committed_txs, report.submitted_txs);
}

// --- parallel block execution under TSan -----------------------------------

namespace exec_stress {

// Counter (bounded footprint) and slot writer (⊤ footprint): together
// they exercise wave speculation, commit-slot fallbacks and dynamic
// footprint recording inside the scheduler.
const char* kCounter = R"(
PUSH 0
CALLDATALOAD
PUSH 1
EQ
JUMPI @add
PUSH 1
SLOAD
RETURN 1
add:
PUSH 1
CALLDATALOAD
PUSH 1
SLOAD
ADD
PUSH 1
SSTORE
STOP
)";
const char* kSlotWriter = R"(
PUSH 1
CALLDATALOAD
PUSH 0
CALLDATALOAD
SSTORE
STOP
)";

struct Replica {
  vm::ContractStore store;
  chain::VmExecutionHook hook{store};
  chain::Node node;

  Replica(const chain::ChainParams& params, const chain::Block& genesis,
          const std::string& who)
      : node(crypto::key_from_seed(who), params, genesis, &hook) {}
};

struct Fixture {
  std::vector<crypto::PrivateKey> users;
  chain::ChainParams params;
  chain::Block genesis = chain::make_genesis("exec-stress", ~0ULL);
  std::vector<chain::Block> blocks;

  Fixture() {
    params.consensus = chain::ConsensusKind::Pbft;
    for (int i = 0; i < 8; ++i) {
      users.push_back(crypto::key_from_seed("stress-u" + std::to_string(i)));
      params.premine.push_back(
          {crypto::address_of(users.back().pub), 1'000'000'000});
    }
    // Build a contract-heavy chain once, sequentially.
    Replica builder(params, genesis, "stress-builder");
    std::vector<std::uint64_t> nonces(users.size(), 0);
    std::vector<chain::Transaction> deploys = {
        chain::make_deploy(users[0], vm::assemble(kCounter), nonces[0]++),
        chain::make_deploy(users[1], vm::assemble(kCounter), nonces[1]++),
        chain::make_deploy(users[2], vm::assemble(kSlotWriter), nonces[2]++)};
    commit(builder, deploys, 1'000);
    std::vector<vm::Word> ids;
    for (const auto& d : deploys)
      ids.push_back(*builder.hook.contract_id_of(d.id()));

    Rng rng(0x57e55ULL);
    for (int b = 0; b < 10; ++b) {
      std::vector<chain::Transaction> txs;
      for (int t = 0; t < 16; ++t) {
        const std::size_t u = rng.uniform(users.size());
        switch (rng.uniform(3)) {
          case 0:
            txs.push_back(chain::make_transfer(
                users[u], crypto::address_of(users[rng.uniform(8)].pub),
                1 + rng.uniform(100), nonces[u]++));
            break;
          case 1:
            txs.push_back(chain::make_call(users[u], ids[rng.uniform(2)],
                                           {1, 1 + rng.uniform(9)},
                                           nonces[u]++));
            break;
          default:
            txs.push_back(chain::make_call(users[u], ids[2],
                                           {rng.uniform(6), rng.uniform(3)},
                                           nonces[u]++));
            break;
        }
      }
      commit(builder, txs, 2'000 + 1'000 * b);
    }
  }

  void commit(Replica& builder, const std::vector<chain::Transaction>& txs,
              std::uint64_t time_ms) {
    for (const auto& tx : txs) ASSERT_TRUE(builder.node.submit(tx));
    const chain::Block block = builder.node.propose(time_ms);
    ASSERT_EQ(block.txs.size(), txs.size());
    ASSERT_EQ(builder.node.receive(block), chain::BlockVerdict::Accepted);
    blocks.push_back(block);
  }
};

}  // namespace exec_stress

TEST(StressConcurrency, ParallelExecContractWavesMatchSequential) {
  // One wave-parallel replica applies a contract-heavy chain: speculation
  // fans across the pool while the commit thread mutates state/store in
  // alternation — the frozen-state/join protocol TSan should probe.
  exec_stress::Fixture fx;
  if (testing::Test::HasFatalFailure()) return;

  ThreadPool pool(4);
  exec_stress::Replica seq(fx.params, fx.genesis, "stress-seq");
  exec_stress::Replica par(fx.params, fx.genesis, "stress-par");
  chain::exec::ExecutionConfig cfg;
  cfg.workers = 4;
  cfg.pool = &pool;
  par.node.set_execution(cfg);

  for (const chain::Block& b : fx.blocks) {
    ASSERT_EQ(seq.node.receive(b), chain::BlockVerdict::Accepted);
    ASSERT_EQ(par.node.receive(b), chain::BlockVerdict::Accepted);
  }
  EXPECT_EQ(par.node.state().digest(), seq.node.state().digest());
  EXPECT_EQ(par.store.digest(), seq.store.digest());
  EXPECT_GT(par.node.executor().metrics().parallel_txs, 0u);
}

TEST(StressConcurrency, ParallelExecReplicasShareOnePool) {
  // Several wave-parallel replicas replay the same chain concurrently,
  // all fanning their waves across ONE shared ThreadPool — pool reuse
  // across schedulers plus replica threads driving commits in parallel.
  exec_stress::Fixture fx;
  if (testing::Test::HasFatalFailure()) return;

  constexpr int kReplicas = 3;
  ThreadPool pool(4);
  std::vector<std::unique_ptr<exec_stress::Replica>> replicas;
  for (int i = 0; i < kReplicas; ++i) {
    replicas.push_back(std::make_unique<exec_stress::Replica>(
        fx.params, fx.genesis, "stress-r" + std::to_string(i)));
    chain::exec::ExecutionConfig cfg;
    cfg.workers = 4;
    cfg.pool = &pool;
    replicas.back()->node.set_execution(cfg);
  }

  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kReplicas; ++i) {
    threads.emplace_back([&, i] {
      for (const chain::Block& b : fx.blocks)
        if (replicas[static_cast<std::size_t>(i)]->node.receive(b) ==
            chain::BlockVerdict::Accepted)
          ++accepted;
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(accepted.load(),
            kReplicas * static_cast<int>(fx.blocks.size()));
  for (int i = 1; i < kReplicas; ++i) {
    EXPECT_EQ(replicas[static_cast<std::size_t>(i)]->node.state().digest(),
              replicas[0]->node.state().digest());
    EXPECT_EQ(replicas[static_cast<std::size_t>(i)]->store.digest(),
              replicas[0]->store.digest());
  }
}

}  // namespace
}  // namespace mc
