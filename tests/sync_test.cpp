// Crash-recovery chain sync tests: catch-up, retry/backoff under loss and
// dead peers, and the end-to-end fault scenario the architecture must
// survive (leader crash + regional partition, deterministic replay).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "chain/faultsim.hpp"
#include "chain/node.hpp"
#include "chain/sync.hpp"
#include "sim/event_queue.hpp"
#include "sim/faults.hpp"
#include "sim/network.hpp"

namespace mc::chain {
namespace {

struct SyncHarness {
  ChainParams params;
  Block genesis;
  std::vector<std::unique_ptr<Node>> nodes;
  sim::EventQueue queue;
  sim::Network network{sim::NetworkConfig{}};

  explicit SyncHarness(std::size_t n, std::size_t chain_len) {
    params.consensus = ConsensusKind::Pbft;
    genesis = make_genesis("sync-test", params.pow_target);
    for (std::size_t i = 0; i < n; ++i)
      nodes.push_back(std::make_unique<Node>(
          crypto::key_from_seed("sync-node-" + std::to_string(i)), params,
          genesis));
    network = sim::Network::uniform(n, 1);

    // Everyone except the last node already has the chain.
    for (std::size_t h = 1; h <= chain_len; ++h) {
      const Block block = nodes[0]->propose(h * 1'000);
      for (std::size_t i = 0; i + 1 < nodes.size(); ++i)
        EXPECT_EQ(nodes[i]->receive(block), BlockVerdict::Accepted)
            << "node " << i << " height " << h;
    }
  }

  [[nodiscard]] std::vector<Node*> ptrs() const {
    std::vector<Node*> out;
    for (const auto& n : nodes) out.push_back(n.get());
    return out;
  }
};

TEST(ChainSync, BehindNodeCatchesUpToPeerTip) {
  SyncHarness h(3, 20);
  const sim::NodeId behind = 2;
  ASSERT_EQ(h.nodes[behind]->height(), 0u);

  SyncManager sync(h.queue, h.network, h.ptrs());
  SyncOutcome result;
  bool done = false;
  sync.start_sync(behind, [&](sim::NodeId who, const SyncOutcome& outcome) {
    EXPECT_EQ(who, behind);
    result = outcome;
    done = true;
  });
  EXPECT_TRUE(sync.syncing(behind));
  h.queue.run(30.0);

  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.blocks_fetched, 20u);
  EXPECT_GT(result.bytes_fetched, 0u);
  EXPECT_EQ(h.nodes[behind]->height(), 20u);
  EXPECT_EQ(h.nodes[behind]->tip(), h.nodes[0]->tip());
  EXPECT_FALSE(sync.syncing(behind));
  EXPECT_EQ(sync.stats().sessions_completed, 1u);
  // 20 blocks at the default batch of 16 need at least two requests.
  EXPECT_GE(sync.stats().requests_sent, 2u);
}

TEST(ChainSync, ConvergesUnderTwentyPercentLoss) {
  SyncHarness h(4, 30);
  const sim::NodeId behind = 3;

  SyncConfig cfg;
  cfg.batch_blocks = 4;  // many round trips => many loss draws
  SyncManager sync(h.queue, h.network, h.ptrs(), cfg);
  sim::LinkPolicy lossy;
  lossy.loss = [](sim::NodeId, sim::NodeId) { return 0.20; };
  sync.set_link_policy(lossy);

  bool ok = false;
  sync.start_sync(behind,
                  [&](sim::NodeId, const SyncOutcome& o) { ok = o.ok; });
  h.queue.run(120.0);

  EXPECT_TRUE(ok);
  EXPECT_EQ(h.nodes[behind]->height(), 30u);
  EXPECT_EQ(h.nodes[behind]->tip(), h.nodes[0]->tip());
  // Loss must have cost something, and retries must have recovered it.
  EXPECT_GT(sync.stats().timeouts + sync.stats().retries, 0u);
}

TEST(ChainSync, RotatesAwayFromDeadPeer) {
  SyncHarness h(3, 10);
  const sim::NodeId behind = 2;
  const sim::NodeId dead = 1;

  SyncManager sync(h.queue, h.network, h.ptrs());
  sim::LinkPolicy policy;
  policy.connected = [dead](sim::NodeId from, sim::NodeId to) {
    return from != dead && to != dead;
  };
  sync.set_link_policy(policy);

  bool ok = false;
  sync.start_sync(behind,
                  [&](sim::NodeId, const SyncOutcome& o) { ok = o.ok; });
  h.queue.run(60.0);

  EXPECT_TRUE(ok);
  EXPECT_EQ(h.nodes[behind]->height(), 10u);
}

TEST(ChainSync, GivesUpWhenEveryPeerIsDead) {
  SyncHarness h(3, 5);
  const sim::NodeId behind = 2;

  SyncConfig cfg;
  cfg.max_retries = 3;
  SyncManager sync(h.queue, h.network, h.ptrs(), cfg);
  sim::LinkPolicy cut;
  cut.connected = [behind](sim::NodeId from, sim::NodeId to) {
    return from == to || (from != behind && to != behind);
  };
  sync.set_link_policy(cut);

  bool done = false, ok = true;
  sync.start_sync(behind, [&](sim::NodeId, const SyncOutcome& o) {
    done = true;
    ok = o.ok;
  });
  h.queue.run(60.0);

  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
  EXPECT_EQ(h.nodes[behind]->height(), 0u);
  EXPECT_EQ(sync.stats().sessions_failed, 1u);
  EXPECT_GE(sync.stats().timeouts, cfg.max_retries);
}

// The ISSUE acceptance scenario: 16 PBFT nodes, the leader crashes and
// recovers, then a 5-node region is partitioned away. The 11-node
// majority equals the quorum exactly, so every block committed during
// the partition REQUIRES the recovered ex-leader's vote — committing
// during the window proves the healed node rejoined consensus. The same
// seed must reproduce the identical final state root.
FaultSimConfig acceptance_config() {
  FaultSimConfig config;
  config.node_count = 16;  // f = 5, quorum = 11
  config.region_of = {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1};
  config.tx_count = 80;
  config.tx_rate_per_s = 10.0;
  config.pbft.request_timeout_s = 0.5;
  config.sim_limit_s = 80.0;
  config.seed = 1234;
  config.faults.crash(/*node=*/0, /*at=*/6.0, /*until=*/11.0)
      .partition({1}, /*at=*/20.0, /*until=*/40.0);
  return config;
}

TEST(FaultScenario, LeaderCrashAndPartitionStayAvailable) {
  const FaultSimReport report = run_fault_sim(acceptance_config());

  // Consensus stayed live in all three phases of the fault window.
  EXPECT_GT(report.blocks_before, 0u);
  EXPECT_GT(report.blocks_during, 0u);
  EXPECT_GT(report.blocks_after, 0u);
  EXPECT_GT(report.committed_txs, 0u);
  EXPECT_GT(report.view_changes, 0u);   // leader crash forced rotation
  EXPECT_GT(report.pbft_dropped, 0u);   // partition cut real messages

  // The crashed leader came back, fetched the blocks it missed, and its
  // recovery is on the record.
  ASSERT_FALSE(report.recoveries.empty());
  const RecoveryRecord& rec = report.recoveries.front();
  EXPECT_EQ(rec.node, 0u);
  EXPECT_TRUE(rec.resynced);
  EXPECT_GT(rec.blocks_fetched, 0u);
  EXPECT_GT(rec.bytes_fetched, 0u);
  EXPECT_GT(rec.recovery_time(), 0.0);
  EXPECT_GT(report.sync.sessions_completed, 0u);

  // Every live node — the ex-leader and the healed minority included —
  // converged on one canonical tip.
  EXPECT_TRUE(report.live_nodes_agree);
  EXPECT_GT(report.final_height, 0u);
}

TEST(FaultScenario, SameSeedReproducesIdenticalFinalState) {
  const FaultSimReport a = run_fault_sim(acceptance_config());
  const FaultSimReport b = run_fault_sim(acceptance_config());

  EXPECT_EQ(a.final_state_root, b.final_state_root);
  EXPECT_EQ(a.final_tip, b.final_tip);
  EXPECT_EQ(a.final_height, b.final_height);
  EXPECT_EQ(a.blocks_committed, b.blocks_committed);
  EXPECT_EQ(a.blocks_before, b.blocks_before);
  EXPECT_EQ(a.blocks_during, b.blocks_during);
  EXPECT_EQ(a.blocks_after, b.blocks_after);
  EXPECT_EQ(a.committed_txs, b.committed_txs);
  EXPECT_EQ(a.view_changes, b.view_changes);
  EXPECT_EQ(a.pbft_messages, b.pbft_messages);
  EXPECT_EQ(a.sync.requests_sent, b.sync.requests_sent);
  EXPECT_EQ(a.sync.blocks_fetched, b.sync.blocks_fetched);
  ASSERT_EQ(a.recoveries.size(), b.recoveries.size());
  for (std::size_t i = 0; i < a.recoveries.size(); ++i) {
    EXPECT_EQ(a.recoveries[i].node, b.recoveries[i].node);
    EXPECT_DOUBLE_EQ(a.recoveries[i].synced_at, b.recoveries[i].synced_at);
    EXPECT_EQ(a.recoveries[i].blocks_fetched, b.recoveries[i].blocks_fetched);
  }
}

}  // namespace
}  // namespace mc::chain
