// ThreadPool edge cases: submit-after-stop, exception propagation through
// futures, degenerate and throwing parallel_for bodies, destructor draining.
// These run in every sanitizer preset (see CMakePresets.json).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace mc {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto doubled = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(doubled.get(), 42);
}

TEST(ThreadPool, TaskExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto failing = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ParallelForRethrowsAfterAllBodiesFinish) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  const std::size_t n = 64;
  try {
    pool.parallel_for(n, [&](std::size_t i) {
      if (i % 8 == 3) throw std::runtime_error("body " + std::to_string(i));
      ++completed;
    });
    FAIL() << "parallel_for swallowed the body exception";
  } catch (const std::runtime_error&) {
    // Every non-throwing body must have run to completion before the
    // rethrow — parallel_for may not abandon stragglers.
    EXPECT_EQ(completed.load(), static_cast<int>(n - n / 8));
  }
}

TEST(ThreadPool, SubmitAfterStopThrows) {
  ThreadPool pool(2);
  auto before = pool.submit([] { return 1; });
  EXPECT_EQ(before.get(), 1);
  pool.stop();
  EXPECT_THROW(pool.submit([] { return 2; }), std::runtime_error);
  pool.stop();  // idempotent
}

TEST(ThreadPool, DestructorDrainsPendingWork) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    // Head task blocks the lone worker; the rest pile up in the queue and
    // must still execute during destruction.
    for (int i = 0; i < 16; ++i)
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++ran;
      });
  }
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, SizeAndPendingReporting) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.pending(), 0u);
}

}  // namespace
}  // namespace mc
