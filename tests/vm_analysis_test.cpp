// Static analyzer tests: per-opcode-class transfer functions, CFG
// properties (invalid jumps, unreachable code, loops), admission policy,
// per-entry-point precision, conflict reports, and the mechanical
// soundness contract — every committed fuzz-corpus input is analyzed AND
// executed, and the dynamic trace must stay inside the static bounds.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "chain/conflict.hpp"
#include "chain/vm_hook.hpp"
#include "contracts/policy.hpp"
#include "contracts/registry.hpp"
#include "vm/analysis/analysis.hpp"
#include "vm/assembler.hpp"
#include "vm/contract_store.hpp"
#include "vm/vm.hpp"

#ifndef MEDCHAIN_CORPUS_DIR
#error "build must define MEDCHAIN_CORPUS_DIR (see tests/CMakeLists.txt)"
#endif

namespace {

using namespace mc;
using namespace mc::vm;
using analysis::AnalysisReport;

AnalysisReport analyze_asm(const char* source,
                           std::optional<Word> selector = std::nullopt) {
  analysis::AnalyzeOptions opts;
  opts.selector = selector;
  return analysis::analyze(BytesView(assemble(source)), opts);
}

// ---------------------------------------------------------------------------
// Transfer functions per opcode class
// ---------------------------------------------------------------------------

TEST(Analysis, ConstantFoldingProvesTightGasAndStack) {
  const AnalysisReport r = analyze_asm(R"(
    PUSH 6
    PUSH 7
    MUL
    RETURN 1
  )");
  EXPECT_TRUE(r.well_formed);
  EXPECT_TRUE(r.clean());
  EXPECT_FALSE(r.gas.top);
  EXPECT_EQ(r.gas.max, 3u * 4u);  // four default-cost instructions
  EXPECT_FALSE(r.stack.top);
  EXPECT_EQ(r.stack.max_depth, 2u);
}

TEST(Analysis, ConstantConditionPrunesTheDeadBranch) {
  // cond = IsZero(0) = 1, so the fall-through REVERT is unreachable.
  const AnalysisReport r = analyze_asm(R"(
    PUSH 0
    ISZERO
    JUMPI @ok
    REVERT
    ok:
    STOP
  )");
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.unreachable_instructions, 1u);  // the REVERT
}

TEST(Analysis, StorageOpsClassifyKeys) {
  using Kind = analysis::FootprintEntry::Kind;
  // Constant key write, parameter-derived (hash of tag+calldata) read.
  const AnalysisReport r = analyze_asm(R"(
    PUSH 9
    PUSH 5
    SSTORE
    PUSH 1
    PUSH 0
    CALLDATALOAD
    HASHN 2
    SLOAD
    RETURN 1
  )");
  ASSERT_EQ(r.footprint.entries.size(), 2u);
  EXPECT_EQ(r.footprint.exact_keys(Kind::Write),
            (std::set<Word>{5}));
  EXPECT_FALSE(r.footprint.unbounded(Kind::Write));
  EXPECT_TRUE(r.footprint.unbounded(Kind::Read));  // param-derived key
  bool saw_param_read = false;
  for (const auto& e : r.footprint.entries)
    if (e.kind == Kind::Read)
      saw_param_read =
          analysis::key_class_of(e.key) == analysis::KeyClass::Param;
  EXPECT_TRUE(saw_param_read);
}

TEST(Analysis, HashOfConstantsFoldsToTheVmValue) {
  using Kind = analysis::FootprintEntry::Kind;
  // HASHN over constants must produce the exact key the VM computes.
  const char* src = R"(
    PUSH 1
    PUSH 2
    PUSH 3
    HASHN 2
    SSTORE
    STOP
  )";
  const AnalysisReport r = analyze_asm(src);
  ASSERT_FALSE(r.footprint.unbounded(Kind::Write));
  const std::set<Word> keys = r.footprint.exact_keys(Kind::Write);
  ASSERT_EQ(keys.size(), 1u);

  // Execute and confirm the dynamic write hits the statically-proven key.
  Storage storage;
  ExecContext ctx;
  ExecTrace trace;
  ctx.trace = &trace;
  NullHost host;
  const ExecResult result =
      execute(BytesView(assemble(src)), storage, ctx, host);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(trace.writes, keys);
}

TEST(Analysis, EnvironmentOpsAreParamNotTop) {
  // caller-keyed storage write: key = H(tag, CALLER) is parameter-derived.
  using Kind = analysis::FootprintEntry::Kind;
  const AnalysisReport r = analyze_asm(R"(
    PUSH 1
    PUSH 3
    CALLER
    HASHN 2
    SSTORE
    STOP
  )");
  ASSERT_EQ(r.footprint.entries.size(), 1u);
  EXPECT_EQ(analysis::key_class_of(r.footprint.entries[0].key),
            analysis::KeyClass::Param);
  EXPECT_TRUE(r.footprint.unbounded(Kind::Write));
}

TEST(Analysis, SLoadResultIsUnknown) {
  // A storage-loaded key is Top: the footprint degrades to unbounded.
  const AnalysisReport r = analyze_asm(R"(
    PUSH 1
    SLOAD
    SLOAD
    RETURN 1
  )");
  ASSERT_EQ(r.footprint.entries.size(), 2u);
  EXPECT_EQ(analysis::key_class_of(r.footprint.entries[1].key),
            analysis::KeyClass::Unknown);
}

TEST(Analysis, DupSwapTrackValuesExactly) {
  const AnalysisReport r = analyze_asm(R"(
    PUSH 10
    PUSH 20
    DUP 2
    SWAP 1
    SSTORE
    STOP
  )");
  // Stack evolves [10,20,10] -> swap -> [10,10,20]; SSTORE pops key=20,
  // value=10: the write key must be the exact constant 20.
  EXPECT_EQ(r.footprint.exact_keys(analysis::FootprintEntry::Kind::Write),
            (std::set<Word>{20}));
}

// ---------------------------------------------------------------------------
// Control flow: invalid jumps, loops, shared exit blocks
// ---------------------------------------------------------------------------

TEST(Analysis, OutOfBoundsJumpIsInvalid) {
  const AnalysisReport r = analyze_asm("PUSH 9999\nJUMP\n");
  ASSERT_EQ(r.invalid_jump_pcs.size(), 1u);
  EXPECT_FALSE(r.clean());
}

TEST(Analysis, JumpIntoImmediateIsInvalid) {
  // pc 2 lands inside the PUSH imm64 — not an instruction boundary.
  const AnalysisReport r = analyze_asm("PUSH 2\nJUMP\n");
  ASSERT_EQ(r.invalid_jump_pcs.size(), 1u);
}

TEST(Analysis, NonConstantJumpDegradesToTop) {
  const AnalysisReport r = analyze_asm(R"(
    PUSH 0
    CALLDATALOAD
    JUMP
  )");
  EXPECT_EQ(r.unresolved_jump_pcs.size(), 1u);
  EXPECT_TRUE(r.incomplete);
  EXPECT_TRUE(r.gas.top);
  EXPECT_TRUE(r.stack.top);
}

TEST(Analysis, LoopMakesGasTopAndNamesTheHead) {
  const AnalysisReport r = analyze_asm(R"(
    top:
    PUSH 1
    JUMPI @top
    STOP
  )");
  EXPECT_TRUE(r.cfg.has_cycle);
  EXPECT_TRUE(r.gas.top);
  ASSERT_FALSE(r.gas.loop_head_pcs.empty());
  EXPECT_EQ(r.gas.loop_head_pcs[0], 0u);  // the `top:` label
  // cond is the constant 1: the branch is always taken, so the STOP
  // after it is provably dead and the stack stays depth-neutral.
  EXPECT_FALSE(r.stack.underflow_possible);
  EXPECT_EQ(r.unreachable_instructions, 1u);
}

TEST(Analysis, SharedExitBlockWithDivergentDepthsStaysPrecise) {
  // Both guards jump to one revert label from different stack depths —
  // the per-(pc, depth) domain must not lose the bounds over it.
  const AnalysisReport r = analyze_asm(R"(
    PUSH 0
    CALLDATALOAD
    ISZERO
    JUMPI @fail
    PUSH 1
    PUSH 2
    PUSH 1
    CALLDATALOAD
    GT
    JUMPI @fail
    POP
    STOP
    fail:
    REVERT
  )");
  EXPECT_TRUE(r.clean());
  EXPECT_FALSE(r.gas.top);
  EXPECT_FALSE(r.stack.top);
}

TEST(Analysis, StackViolationsAreFlagged) {
  EXPECT_TRUE(analyze_asm("POP\n").stack.underflow_possible);
  const Bytes flood(1100, 0x60);  // Op::Caller
  const AnalysisReport r = analysis::analyze(BytesView(flood));
  EXPECT_TRUE(r.stack.overflow_possible);
  EXPECT_FALSE(r.stack.top);
  EXPECT_EQ(r.stack.max_depth, kMaxStack);
}

TEST(Analysis, DivideByConstantZeroIsFlagged) {
  const AnalysisReport r = analyze_asm("PUSH 1\nPUSH 0\nDIV\nSTOP\n");
  EXPECT_TRUE(r.divide_by_zero_possible);
  // The division traps, so STOP is never reached.
  EXPECT_EQ(r.unreachable_instructions, 1u);
}

// ---------------------------------------------------------------------------
// Per-entry-point analysis and the built-in suite
// ---------------------------------------------------------------------------

TEST(Analysis, SelectorPinsTheDispatchAndTightensGas) {
  const Bytes& code = contracts::PolicyContract::bytecode();
  const AnalysisReport whole = analysis::analyze(BytesView(code));
  ASSERT_FALSE(whole.gas.top);

  const std::vector<Word> selectors =
      analysis::discover_selectors(BytesView(code));
  ASSERT_GE(selectors.size(), 4u);
  for (const Word sel : selectors) {
    analysis::AnalyzeOptions opts;
    opts.selector = sel;
    const AnalysisReport per = analysis::analyze(BytesView(code), opts);
    ASSERT_FALSE(per.gas.top) << "selector " << sel;
    EXPECT_LE(per.gas.max, whole.gas.max) << "selector " << sel;
  }
}

TEST(Analysis, EveryBuiltinContractIsCleanAndBounded) {
  for (const Bytes* code : {&contracts::RegistryContract::bytecode(),
                            &contracts::PolicyContract::bytecode()}) {
    const AnalysisReport r = analysis::analyze(BytesView(*code));
    EXPECT_TRUE(r.clean());
    EXPECT_FALSE(r.gas.top);
    EXPECT_FALSE(r.stack.top);
    EXPECT_LE(r.stack.max_depth, kMaxStack);
  }
}

// ---------------------------------------------------------------------------
// Symbolic keys, per-selector summaries, and concretization (PR 9)
// ---------------------------------------------------------------------------

// Selector-dependent keys: the per-selector summaries must prune each
// entry point to its own storage sites, with the symbolic key expression
// preserved, and summary_for must route calldata to the matching one.
TEST(Symbolic, SelectorSummariesCarryDistinctKeyExpressions) {
  using Kind = analysis::FootprintEntry::Kind;
  const char* src = R"(
    PUSH 0
    CALLDATALOAD
    DUP 1
    PUSH 1
    EQ
    JUMPI @dyn
    DUP 1
    PUSH 2
    EQ
    JUMPI @fixed
    REVERT
    dyn:
    POP
    PUSH 1
    PUSH 5
    PUSH 1
    CALLDATALOAD
    HASHN 2
    SSTORE
    STOP
    fixed:
    POP
    PUSH 1
    PUSH 42
    SSTORE
    STOP
  )";
  const Bytes code = assemble(src);
  const auto summaries = analysis::summarize_selectors(BytesView(code));
  ASSERT_EQ(summaries.size(), 2u);

  const auto write_entries = [](const analysis::StorageFootprint& fp) {
    std::vector<analysis::FootprintEntry> out;
    for (const auto& e : fp.entries)
      if (e.kind == Kind::Write) out.push_back(e);
    return out;
  };

  const auto dyn = write_entries(summaries[0].footprint);
  ASSERT_EQ(dyn.size(), 1u);
  EXPECT_EQ(analysis::key_class_of(dyn[0].key), analysis::KeyClass::Param);
  ASSERT_NE(dyn[0].key.sym, nullptr);
  EXPECT_EQ(analysis::key_to_string(dyn[0].key), "H(5, calldata[1])");

  const auto fixed = write_entries(summaries[1].footprint);
  ASSERT_EQ(fixed.size(), 1u);
  EXPECT_EQ(analysis::key_class_of(fixed[0].key), analysis::KeyClass::Exact);
  EXPECT_EQ(fixed[0].key.value, 42u);

  EXPECT_EQ(analysis::summary_for(summaries, {1, 9}), &summaries[0]);
  EXPECT_EQ(analysis::summary_for(summaries, {2}), &summaries[1]);
  EXPECT_EQ(analysis::summary_for(summaries, {3}), nullptr);
  EXPECT_EQ(analysis::summary_for(summaries, {}), nullptr);
}

// Affine keys wrap mod 2^64 exactly like the VM's arithmetic: the
// concretized cell must equal the traced one even when scale*param
// overflows.
TEST(Symbolic, AffineOverflowWrapsLikeTheVm) {
  const char* src = R"(
    PUSH 9
    PUSH 1
    CALLDATALOAD
    PUSH 18446744073709551615
    MUL
    PUSH 5
    ADD
    SSTORE
    STOP
  )";
  const AnalysisReport r = analyze_asm(src);
  ASSERT_EQ(r.footprint.entries.size(), 1u);
  const analysis::AbsValue& key = r.footprint.entries[0].key;
  ASSERT_EQ(analysis::key_class_of(key), analysis::KeyClass::Param);
  ASSERT_NE(key.sym, nullptr);
  EXPECT_EQ(analysis::key_to_string(key),
            "18446744073709551615*calldata[1]+5");

  Storage storage;
  ExecContext ctx;
  ctx.calldata = {0, 7};
  ExecTrace trace;
  ctx.trace = &trace;
  NullHost host;
  ASSERT_TRUE(execute(BytesView(assemble(src)), storage, ctx, host).ok());
  // 7 * (2^64 - 1) + 5 ≡ -2 mod 2^64.
  EXPECT_EQ(trace.writes, (std::set<Word>{0xffff'ffff'ffff'fffeULL}));

  const analysis::ConcreteFootprint cf =
      analysis::concretize_footprint(r.footprint, analysis::env_of(ctx));
  EXPECT_TRUE(cf.writes_exact);
  EXPECT_EQ(cf.writes, trace.writes);
}

// HashN over a mixed Const/Param tuple: the symbolic hash must evaluate
// to the identical sha256 folding the interpreter performs.
TEST(Symbolic, HashOfMixedConstParamTupleMatchesTheVm) {
  const char* src = R"(
    PUSH 1
    PUSH 5
    PUSH 2
    CALLDATALOAD
    PUSH 9
    HASHN 3
    SSTORE
    STOP
  )";
  const AnalysisReport r = analyze_asm(src);
  ASSERT_EQ(r.footprint.entries.size(), 1u);
  const analysis::AbsValue& key = r.footprint.entries[0].key;
  ASSERT_NE(key.sym, nullptr);
  EXPECT_EQ(analysis::key_to_string(key), "H(5, calldata[2], 9)");

  Storage storage;
  ExecContext ctx;
  ctx.calldata = {0, 0, 77};
  ExecTrace trace;
  ctx.trace = &trace;
  NullHost host;
  ASSERT_TRUE(execute(BytesView(assemble(src)), storage, ctx, host).ok());

  const analysis::ConcreteFootprint cf =
      analysis::concretize_footprint(r.footprint, analysis::env_of(ctx));
  EXPECT_TRUE(cf.writes_exact);
  EXPECT_EQ(cf.writes, trace.writes);
}

// Join of two distinct symbolic keys must widen to plain Param — the
// merged key concretizes to "unknown", never to one of the two cells.
TEST(Symbolic, JoinOfDistinctKeysWidensAndRefusesToConcretize) {
  using Kind = analysis::FootprintEntry::Kind;
  const char* src = R"(
    PUSH 9
    PUSH 0
    CALLDATALOAD
    JUMPI @alt
    PUSH 1
    CALLDATALOAD
    JUMP @store
    alt:
    PUSH 1
    CALLDATALOAD
    PUSH 5
    ADD
    store:
    SSTORE
    STOP
  )";
  const AnalysisReport r = analyze_asm(src);
  // Whatever the fixpoint recorded at the store site, no entry may claim
  // an exact constant cell, and the merged Param key must make the
  // concretized write set inexact (fall back to unbounded).
  bool saw_widened = false;
  for (const auto& e : r.footprint.entries) {
    ASSERT_EQ(e.kind, Kind::Write);
    EXPECT_NE(analysis::key_class_of(e.key), analysis::KeyClass::Exact);
    if (e.key.cls == analysis::ValueClass::Param && e.key.sym == nullptr)
      saw_widened = true;
  }
  EXPECT_TRUE(saw_widened);

  ExecContext ctx;
  ctx.calldata = {1, 30};
  const analysis::ConcreteFootprint cf =
      analysis::concretize_footprint(r.footprint, analysis::env_of(ctx));
  EXPECT_FALSE(cf.writes_exact);
}

// Env-keyed footprints concretize only when the environment value is
// known: caller-keyed cells resolve under a full ExecContext env, but a
// scheduling-time env with no timestamp must refuse a Timestamp key.
TEST(Symbolic, EnvKeysConcretizeOnlyWhenTheEnvValueIsKnown) {
  const char* caller_src = R"(
    PUSH 1
    PUSH 3
    CALLER
    HASHN 2
    SSTORE
    STOP
  )";
  const AnalysisReport r = analyze_asm(caller_src);
  ASSERT_EQ(r.footprint.entries.size(), 1u);
  EXPECT_EQ(analysis::key_to_string(r.footprint.entries[0].key),
            "H(3, caller)");

  Storage storage;
  ExecContext ctx;
  ctx.caller = 1234;
  ExecTrace trace;
  ctx.trace = &trace;
  NullHost host;
  ASSERT_TRUE(
      execute(BytesView(assemble(caller_src)), storage, ctx, host).ok());
  const analysis::ConcreteFootprint cf =
      analysis::concretize_footprint(r.footprint, analysis::env_of(ctx));
  EXPECT_TRUE(cf.writes_exact);
  EXPECT_EQ(cf.writes, trace.writes);

  // Same env minus the caller: the key must refuse to concretize.
  analysis::SymbolicEnv no_caller;
  no_caller.calldata = &ctx.calldata;
  EXPECT_FALSE(
      analysis::concretize_footprint(r.footprint, no_caller).writes_exact);

  const AnalysisReport ts = analyze_asm("PUSH 1\nTIMESTAMP\nSSTORE\nSTOP\n");
  ASSERT_EQ(ts.footprint.entries.size(), 1u);
  analysis::SymbolicEnv sched_env;  // scheduling time: no timestamp
  sched_env.calldata = &ctx.calldata;
  sched_env.caller = 1234;
  EXPECT_FALSE(
      analysis::concretize_footprint(ts.footprint, sched_env).writes_exact);
}

// ---------------------------------------------------------------------------
// Deployment admission
// ---------------------------------------------------------------------------

TEST(Admission, StoreRejectsTheFourRegressionInputs) {
  ContractStore store;

  const auto expect_rejected = [&store](Bytes code, const char* what) {
    EXPECT_THROW(store.deploy(std::move(code), /*deployer=*/1, /*height=*/1),
                 AdmissionError)
        << what;
  };

  {
    ByteWriter w;
    w.u8(0x01);  // PUSH
    w.u64(9999);
    w.u8(0x30);  // JUMP
    expect_rejected(w.take(), "out-of-bounds jump");
  }
  {
    ByteWriter w;
    w.u8(0x01);  // PUSH
    w.u64(2);    // lands inside this PUSH's immediate
    w.u8(0x30);  // JUMP
    expect_rejected(w.take(), "misaligned jump");
  }
  expect_rejected(Bytes{0x02}, "POP underflow");
  expect_rejected(Bytes(1100, 0x60), "CALLER-flood overflow");

  EXPECT_EQ(store.size(), 0u);  // nothing slipped through
}

TEST(Admission, PermissivePolicyRestoresOldBehaviour) {
  ContractStore store;
  store.set_admission_policy(analysis::AdmissionPolicy::permissive());
  // Stack-violating code deploys under permissive (the VM still traps it
  // at run time) — but malformed bytecode stays rejected.
  EXPECT_NO_THROW(store.deploy(Bytes{0x02}, 1, 1));
  EXPECT_THROW(store.deploy(Bytes{0xff}, 1, 1), AdmissionError);
}

TEST(Admission, StoredReportMatchesAFreshAnalysis) {
  ContractStore store;
  const Word id = store.deploy(contracts::PolicyContract::bytecode(), 1, 1);
  const DeployedContract* dc = store.contract(id);
  ASSERT_NE(dc, nullptr);
  const AnalysisReport fresh = analysis::analyze(BytesView(dc->code));
  EXPECT_EQ(dc->report.gas.max, fresh.gas.max);
  EXPECT_EQ(dc->report.stack.max_depth, fresh.stack.max_depth);
  EXPECT_EQ(dc->report.footprint.entries.size(),
            fresh.footprint.entries.size());
}

TEST(Admission, GasBoundPolicyLimitIsEnforced) {
  ContractStore store;
  analysis::AdmissionPolicy policy = analysis::AdmissionPolicy::strict();
  policy.max_gas_bound = 1;  // nothing real fits under this
  store.set_admission_policy(policy);
  EXPECT_THROW(store.deploy(contracts::PolicyContract::bytecode(), 1, 1),
               AdmissionError);
}

// ---------------------------------------------------------------------------
// Soundness: dynamic trace ⊆ static bounds over the whole fuzz corpus
// ---------------------------------------------------------------------------

class CorpusHost : public Host {
 public:
  std::optional<Word> oracle(Word request) override {
    if ((request & 7) == 0) return std::nullopt;
    return request * 2654435761ULL + 1;
  }
  void on_event(const Event&) override {}
  std::optional<Word> foreign_storage(Word contract_id, Word key) override {
    return contract_id ^ key;
  }
};

TEST(Soundness, CorpusReplayStaysInsideStaticBounds) {
  namespace fs = std::filesystem;
  const fs::path root(MEDCHAIN_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(root));

  std::size_t replayed = 0;
  for (const auto& dir : fs::directory_iterator(root)) {
    if (!dir.is_directory()) continue;
    for (const auto& entry : fs::directory_iterator(dir.path())) {
      if (!entry.is_regular_file()) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      const Bytes code((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());

      const AnalysisReport report = analysis::analyze(BytesView(code));

      Storage storage;
      storage[1] = 7;
      storage[42] = 9;
      ExecContext ctx;
      ctx.caller = 22;
      ctx.call_value = 33;
      ctx.height = 44;
      ctx.time_ms = 55;
      ctx.gas_limit = 100'000;
      ctx.step_limit = 50'000;
      ctx.calldata = {1, 2, 3, 0xdeadbeefULL};
      ExecTrace trace;
      ctx.trace = &trace;
      CorpusHost host;
      const ExecResult result = execute(BytesView(code), storage, ctx, host);

      EXPECT_EQ(analysis::soundness_violation(report, trace, result), "")
          << "corpus input " << entry.path();
      ++replayed;
    }
  }
  // Every corpus file doubles as a bytecode soundness probe; the corpus
  // must not silently vanish.
  EXPECT_GT(replayed, 20u);
}

// ---------------------------------------------------------------------------
// Per-block conflict reports
// ---------------------------------------------------------------------------

TEST(Conflict, DisjointTransfersCommuteAndSharedPartiesConflict) {
  using namespace mc::chain;
  const auto k1 = crypto::key_from_seed("conflict-a");
  const auto k2 = crypto::key_from_seed("conflict-b");
  const auto k3 = crypto::key_from_seed("conflict-c");
  const auto k4 = crypto::key_from_seed("conflict-d");

  Block block;
  // tx0: a -> b, tx1: c -> d (disjoint), tx2: a -> c (shares sender a).
  block.txs.push_back(
      make_transfer(k1, crypto::address_of(k2.pub), 10, /*nonce=*/0));
  block.txs.push_back(
      make_transfer(k3, crypto::address_of(k4.pub), 10, /*nonce=*/0));
  block.txs.push_back(
      make_transfer(k1, crypto::address_of(k3.pub), 10, /*nonce=*/1));

  const BlockConflictReport r =
      analyze_block_conflicts(block, /*store=*/nullptr);
  EXPECT_EQ(r.txs, 3u);
  EXPECT_EQ(r.pairs, 3u);
  // (0,1) disjoint; (0,2) same sender; (1,2) tx2 credits c = tx1's sender.
  EXPECT_EQ(r.conflicting_pairs, 2u);
  EXPECT_EQ(r.unbounded_txs, 0u);
  EXPECT_NEAR(r.conflict_rate(), 2.0 / 3.0, 1e-9);
}

TEST(Conflict, CallFootprintsComeFromTheStaticReport) {
  using namespace mc::chain;
  ContractStore store;
  // Two deployments of the fixed-slot counter: distinct ids, each with an
  // exact {key 7} footprint in its own storage namespace.
  const char* counter = R"(
    PUSH 7
    SLOAD
    PUSH 1
    ADD
    PUSH 7
    SSTORE
    STOP
  )";
  const Word id_a = store.deploy(assemble(counter), 1, 1);
  const Word id_b = store.deploy(assemble(counter), 1, 1);
  ASSERT_NE(id_a, id_b);

  const auto k1 = crypto::key_from_seed("caller-1");
  const auto k2 = crypto::key_from_seed("caller-2");
  Block block;
  block.txs.push_back(make_call(k1, id_a, {}, /*nonce=*/0));
  block.txs.push_back(make_call(k2, id_b, {}, /*nonce=*/0));

  const BlockConflictReport disjoint = analyze_block_conflicts(block, &store);
  EXPECT_EQ(disjoint.conflicting_pairs, 0u);
  EXPECT_EQ(disjoint.unbounded_txs, 0u);

  // Same contract from two callers: write/write on (id_a, key 7).
  Block clash;
  clash.txs.push_back(make_call(k1, id_a, {}, /*nonce=*/0));
  clash.txs.push_back(make_call(k2, id_a, {}, /*nonce=*/0));
  EXPECT_EQ(analyze_block_conflicts(clash, &store).conflicting_pairs, 1u);

  // Unknown contract: conservatively conflicts with everything.
  Block unknown;
  unknown.txs.push_back(make_call(k1, 0xdead, {}, /*nonce=*/0));
  unknown.txs.push_back(make_call(k2, id_b, {}, /*nonce=*/0));
  const BlockConflictReport u = analyze_block_conflicts(unknown, &store);
  EXPECT_EQ(u.conflicting_pairs, 1u);
  EXPECT_EQ(u.unbounded_txs, 1u);
}

}  // namespace
