// On-chain contract execution tests: Deploy/Call transactions executed
// through the node's ExecutionHook, cross-node determinism, reorg
// rollback of contract state.
#include <gtest/gtest.h>

#include "chain/node.hpp"
#include "chain/vm_hook.hpp"
#include "contracts/abi.hpp"
#include "contracts/policy.hpp"
#include "vm/assembler.hpp"

namespace mc::chain {
namespace {

// A tiny counter contract: selector 1 increments storage[1] by
// calldata[1], selector 2 returns it.
const char* kCounterSource = R"(
PUSH 0
CALLDATALOAD
PUSH 1
EQ
JUMPI @add
PUSH 1
SLOAD
RETURN 1
add:
PUSH 1
CALLDATALOAD
PUSH 1
SLOAD
ADD
PUSH 1
SSTORE
STOP
)";

struct ChainWithVm {
  crypto::PrivateKey user = crypto::key_from_seed("user");
  ChainParams params;
  vm::ContractStore store;
  VmExecutionHook hook{store};
  Block genesis = make_genesis("vm-chain", ~0ULL);
  Node node;

  ChainWithVm() : node(make_node("solo")) {}

  Node make_node(const std::string& who) {
    params.consensus = ConsensusKind::Pbft;
    params.premine = {{crypto::address_of(user.pub), 1'000'000'000}};
    return Node(crypto::key_from_seed(who), params, genesis, &hook);
  }

  /// Submit txs, produce a block, apply it; returns the verdict.
  BlockVerdict commit(const std::vector<Transaction>& txs,
                      std::uint64_t time_ms) {
    for (const auto& tx : txs) node.submit(tx);
    const Block block = node.propose(time_ms);
    return node.receive(block);
  }
};

TEST(VmHook, CallPayloadRoundTrip) {
  const Bytes payload = encode_call_payload(0xabc, {1, 2, 3});
  const auto decoded = decode_call_payload(BytesView(payload));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->contract_id, 0xabcu);
  EXPECT_EQ(decoded->calldata, (std::vector<vm::Word>{1, 2, 3}));
  EXPECT_FALSE(decode_call_payload(str_bytes("junk")).has_value());
}

TEST(VmHook, DeployThenCallOnChain) {
  ChainWithVm chain;
  const Transaction deploy =
      make_deploy(chain.user, vm::assemble(kCounterSource), 0);
  ASSERT_EQ(chain.commit({deploy}, 1'000), BlockVerdict::Accepted);

  const auto contract_id = chain.hook.contract_id_of(deploy.id());
  ASSERT_TRUE(contract_id.has_value());
  EXPECT_TRUE(chain.store.exists(*contract_id));

  // Two increments across two blocks.
  ASSERT_EQ(chain.commit({make_call(chain.user, *contract_id, {1, 5}, 1)},
                         2'000),
            BlockVerdict::Accepted);
  ASSERT_EQ(chain.commit({make_call(chain.user, *contract_id, {1, 7}, 2)},
                         3'000),
            BlockVerdict::Accepted);
  EXPECT_EQ(chain.store.contract(*contract_id)->storage.at(1), 12u);
  EXPECT_EQ(chain.node.height(), 3u);
  // Gas was charged for real execution on top of intrinsic cost.
  EXPECT_GT(chain.node.counters().gas_executed,
            3 * chain.params.transfer_gas);
}

TEST(VmHook, ProposerEvictsMalformedDeploy) {
  // The proposer's preview pass catches the failing deploy, evicts it
  // from the mempool, and falls back to a valid empty block.
  ChainWithVm chain;
  Transaction bad;
  bad.kind = TxKind::Deploy;
  bad.payload = {0xee, 0xee};  // not valid bytecode
  bad.gas_limit = 2'000'000;
  bad.sign_with(chain.user);
  ASSERT_TRUE(chain.node.submit(bad));
  const Block block = chain.node.propose(1'000);
  EXPECT_TRUE(block.txs.empty());  // evicted during preview
  EXPECT_TRUE(chain.node.mempool().empty());
  EXPECT_EQ(chain.node.receive(block), BlockVerdict::Accepted);
  EXPECT_EQ(chain.store.size(), 0u);  // nothing leaked
}

TEST(VmHook, ForeignBlockWithTrappedCallRejectedAndRolledBack) {
  ChainWithVm chain;
  const Transaction deploy =
      make_deploy(chain.user, vm::assemble(kCounterSource), 0);
  ASSERT_EQ(chain.commit({deploy}, 1'000), BlockVerdict::Accepted);
  const auto contract_id = *chain.hook.contract_id_of(deploy.id());

  // A malicious proposer hand-crafts a block holding a good call plus a
  // call into a nonexistent contract (bypassing the preview pass): the
  // block is invalid and neither call's effects survive.
  Block evil = chain.node.propose(2'000);
  evil.txs = {make_call(chain.user, contract_id, {1, 5}, 1),
              make_call(chain.user, 0xdead, {1}, 2)};
  evil.header.tx_root = evil.compute_tx_root();
  EXPECT_EQ(chain.node.receive(evil), BlockVerdict::Invalid);
  EXPECT_EQ(chain.node.height(), 1u);
  EXPECT_EQ(chain.store.contract(contract_id)->storage.count(1), 0u);
}

TEST(VmHook, LyingStateRootRejected) {
  // A block whose transactions all execute but whose claimed state_root
  // disagrees with the derived post-state must be rejected.
  ChainWithVm chain;
  const Transaction deploy =
      make_deploy(chain.user, vm::assemble(kCounterSource), 0);
  ASSERT_TRUE(chain.node.submit(deploy));
  Block block = chain.node.propose(1'000);
  ASSERT_EQ(block.txs.size(), 1u);
  block.header.state_root.data[0] ^= 0xff;  // lie about the outcome
  EXPECT_EQ(chain.node.receive(block), BlockVerdict::Invalid);
  EXPECT_EQ(chain.node.height(), 0u);
  EXPECT_EQ(chain.store.size(), 0u);
}

TEST(VmHook, EveryNodeReachesIdenticalContractState) {
  // The duplicated-execution determinism the paper's transform builds on,
  // now across full nodes executing Deploy/Call from blocks.
  crypto::PrivateKey user = crypto::key_from_seed("user");
  ChainParams params;
  params.consensus = ConsensusKind::Pbft;
  params.premine = {{crypto::address_of(user.pub), 1'000'000'000}};
  const Block genesis = make_genesis("multi-vm", ~0ULL);

  constexpr int kNodes = 4;
  std::vector<vm::ContractStore> stores(kNodes);
  std::vector<VmExecutionHook> hooks;
  std::vector<Node> nodes;
  for (int i = 0; i < kNodes; ++i) hooks.emplace_back(stores[i]);
  for (int i = 0; i < kNodes; ++i)
    nodes.emplace_back(crypto::key_from_seed("n" + std::to_string(i)), params,
                       genesis, &hooks[static_cast<std::size_t>(i)]);

  // Node 0 proposes: deploy the real policy contract, then grant+check.
  const Transaction deploy = make_deploy(
      user, contracts::PolicyContract::bytecode(), 0);
  nodes[0].submit(deploy);
  const Block b1 = nodes[0].propose(1'000);
  for (auto& node : nodes)
    ASSERT_EQ(node.receive(b1), BlockVerdict::Accepted);

  const auto contract_id = *hooks[0].contract_id_of(deploy.id());
  const vm::Word caller = fnv1a(BytesView(deploy.from.data));
  const Transaction reg =
      make_call(user, contract_id, contracts::encode_call(1, {0xd5}), 1);
  const Transaction grant = make_call(
      user, contract_id, contracts::encode_call(2, {0xd5, 0x20, 3}), 2);
  nodes[0].submit(reg);
  nodes[0].submit(grant);
  const Block b2 = nodes[0].propose(2'000);
  for (auto& node : nodes)
    ASSERT_EQ(node.receive(b2), BlockVerdict::Accepted);

  // Identical contract state everywhere.
  const Hash256 reference = stores[0].digest();
  for (int i = 1; i < kNodes; ++i) EXPECT_EQ(stores[i].digest(), reference);
  // And the grant is queryable on any replica.
  for (int i = 0; i < kNodes; ++i) {
    contracts::PolicyContract policy(stores[i], contract_id);
    EXPECT_EQ(policy.owner_of(0xd5), caller);
    EXPECT_TRUE(policy.check(0xd5, 0x20, 3));
  }
}

TEST(VmHook, ReorgRollsContractStateBack) {
  ChainWithVm chain;
  // Competing fork builder shares genesis but has its own store/hook.
  vm::ContractStore fork_store;
  VmExecutionHook fork_hook(fork_store);
  Node fork_builder(crypto::key_from_seed("forker"), chain.params,
                    chain.genesis, &fork_hook);

  // Main chain: deploy + increment to 5.
  const Transaction deploy =
      make_deploy(chain.user, vm::assemble(kCounterSource), 0);
  ASSERT_EQ(chain.commit({deploy}, 1'000), BlockVerdict::Accepted);
  const auto contract_id = *chain.hook.contract_id_of(deploy.id());
  ASSERT_EQ(chain.commit({make_call(chain.user, contract_id, {1, 5}, 1)},
                         2'000),
            BlockVerdict::Accepted);
  EXPECT_EQ(chain.store.contract(contract_id)->storage.at(1), 5u);

  // Fork: three empty blocks from genesis (longer chain, no contract).
  for (int i = 0; i < 3; ++i) {
    const Block fb = fork_builder.propose(1'500 + 1'000 * i);
    ASSERT_EQ(fork_builder.receive(fb), BlockVerdict::Accepted);
    const BlockVerdict verdict = chain.node.receive(fb);
    ASSERT_TRUE(verdict == BlockVerdict::Accepted ||
                verdict == BlockVerdict::AcceptedSide);
  }
  EXPECT_EQ(chain.node.height(), 3u);
  // The deploy and the increment were reorged out: contract is gone.
  EXPECT_FALSE(chain.store.exists(contract_id));
  EXPECT_FALSE(chain.hook.contract_id_of(deploy.id()).has_value());
}

}  // namespace
}  // namespace mc::chain
