// Contract VM tests: opcodes, traps, gas, assembler, determinism.
#include <gtest/gtest.h>

#include "vm/assembler.hpp"
#include "vm/contract_store.hpp"
#include "vm/vm.hpp"

namespace mc::vm {
namespace {

ExecResult run(const std::string& source, std::vector<Word> calldata = {},
               Storage* storage = nullptr, Host* host = nullptr,
               Word caller = 0) {
  const Bytes code = assemble(source);
  Storage local;
  Storage& store = storage != nullptr ? *storage : local;
  ExecContext ctx;
  ctx.caller = caller;
  ctx.calldata = std::move(calldata);
  NullHost null_host;
  return execute(BytesView(code), store, ctx, host != nullptr ? *host : null_host);
}

TEST(Vm, ArithmeticAndReturn) {
  const auto r = run("PUSH 7\nPUSH 5\nADD\nPUSH 3\nMUL\nRETURN 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.returned.size(), 1u);
  EXPECT_EQ(r.returned[0], 36u);
}

TEST(Vm, ComparisonAndLogic) {
  const auto r = run(
      "PUSH 3\nPUSH 5\nLT\n"      // 3 < 5 -> 1
      "PUSH 10\nPUSH 4\nGT\n"     // 10 > 4 -> 1
      "AND\n"                     // 1
      "PUSH 0\nISZERO\n"          // 1
      "EQ\n"                      // 1 == 1 -> 1
      "RETURN 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.returned[0], 1u);
}

TEST(Vm, WrappingArithmeticAndShifts) {
  const auto r = run(
      "PUSH 0\nPUSH 1\nSUB\n"  // 0 - 1 wraps to 2^64-1
      "PUSH 63\nSHR\n"          // -> 1
      "PUSH 1\nSHL\n"           // -> 2
      "RETURN 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.returned[0], 2u);
}

TEST(Vm, ShiftBeyondWidthYieldsZero) {
  const auto r = run("PUSH 5\nPUSH 64\nSHL\nRETURN 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.returned[0], 0u);
}

TEST(Vm, DivideByZeroTraps) {
  EXPECT_EQ(run("PUSH 1\nPUSH 0\nDIV").halt, Halt::DivideByZero);
  EXPECT_EQ(run("PUSH 1\nPUSH 0\nMOD").halt, Halt::DivideByZero);
}

TEST(Vm, StackUnderflowAndOverflow) {
  EXPECT_EQ(run("ADD").halt, Halt::StackUnderflow);
  EXPECT_EQ(run("POP").halt, Halt::StackUnderflow);
  EXPECT_EQ(run("DUP 3\n").halt, Halt::StackUnderflow);
  // Overflow: push in a loop until the 1024-slot cap trips.
  const auto r = run(
      "loop:\n"
      "PUSH 1\n"
      "JUMP @loop");
  EXPECT_EQ(r.halt, Halt::StackOverflow);
}

TEST(Vm, DupAndSwapDepths) {
  const auto r = run(
      "PUSH 1\nPUSH 2\nPUSH 3\n"
      "DUP 3\n"    // [1,2,3,1]
      "SWAP 2\n"   // [1,1,3,2]
      "RETURN 4");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.returned, (std::vector<Word>{1, 1, 3, 2}));
}

TEST(Vm, JumpLoopComputesSum) {
  // Sum 1..10 via a loop: total in slot 1, counter in slot 2.
  const auto r = run(R"(
PUSH 0
PUSH 1
SSTORE          ; total = 0 at key 1? (value=0, key=1) erases; fine
PUSH 1          ; counter = 1 on stack
loop:
DUP 1
PUSH 1
SLOAD
ADD
PUSH 1
SSTORE          ; total += counter
PUSH 1
ADD             ; counter += 1
DUP 1
PUSH 10
GT
ISZERO
JUMPI @loop
PUSH 1
SLOAD
RETURN 1
)");
  ASSERT_TRUE(r.ok()) << halt_name(r.halt);
  EXPECT_EQ(r.returned[0], 55u);
}

TEST(Vm, JumpIntoImmediateIsBadJump) {
  // Offset 1 is inside PUSH's immediate, not an instruction boundary.
  const auto r = run("PUSH 1\nJUMP");
  EXPECT_EQ(r.halt, Halt::BadJump);
}

TEST(Vm, JumpOutOfRangeIsBadJump) {
  EXPECT_EQ(run("PUSH 9999\nJUMP").halt, Halt::BadJump);
}

TEST(Vm, ConditionalJumpFallsThroughOnZero) {
  const auto r = run(
      "PUSH 0\n"
      "JUMPI @skip\n"
      "PUSH 42\nRETURN 1\n"
      "skip:\n"
      "PUSH 7\nRETURN 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.returned[0], 42u);
}

TEST(Vm, CalldataAccess) {
  const auto r = run(
      "PUSH 1\nCALLDATALOAD\n"
      "PUSH 99\nCALLDATALOAD\n"  // out of range -> 0
      "ADD\nCALLDATASIZE\nADD\nRETURN 1",
      {10, 20, 30});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.returned[0], 20u + 0u + 3u);
}

TEST(Vm, StoragePersistsAcrossCallsAndRollsBackOnRevert) {
  Storage storage;
  ASSERT_TRUE(run("PUSH 123\nPUSH 5\nSSTORE\nSTOP", {}, &storage).ok());
  EXPECT_EQ(storage[5], 123u);

  // A reverting run must not leak its writes.
  const auto r = run("PUSH 999\nPUSH 5\nSSTORE\nREVERT", {}, &storage);
  EXPECT_EQ(r.halt, Halt::Revert);
  EXPECT_EQ(storage[5], 123u);

  const auto read = run("PUSH 5\nSLOAD\nRETURN 1", {}, &storage);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.returned[0], 123u);
}

TEST(Vm, StoringZeroErasesKey) {
  Storage storage;
  ASSERT_TRUE(run("PUSH 7\nPUSH 1\nSSTORE\nPUSH 0\nPUSH 1\nSSTORE\nSTOP",
                  {}, &storage)
                  .ok());
  EXPECT_TRUE(storage.empty());
}

TEST(Vm, GasExhaustionTraps) {
  const Bytes code = assemble("loop:\nPUSH 1\nPOP\nJUMP @loop");
  Storage storage;
  ExecContext ctx;
  ctx.gas_limit = 500;
  NullHost host;
  const auto r = execute(BytesView(code), storage, ctx, host);
  EXPECT_EQ(r.halt, Halt::OutOfGas);
  EXPECT_LE(r.gas_used, 500u);
}

TEST(Vm, GasChargedPerOpcodeTable) {
  const auto r = run("PUSH 1\nPUSH 2\nSSTORE\nSTOP");
  ASSERT_TRUE(r.ok());
  // PUSH(3) + PUSH(3) + SSTORE(100) + STOP(3)
  EXPECT_EQ(r.gas_used, 109u);
}

TEST(Vm, EventsDeliveredOnlyOnSuccess) {
  struct RecordingHost : NullHost {
    std::vector<Event> events;
    void on_event(const Event& e) override { events.push_back(e); }
  };
  RecordingHost host;
  ASSERT_TRUE(
      run("PUSH 11\nPUSH 22\nPUSH 777\nEMIT 2\nSTOP", {}, nullptr, &host)
          .ok());
  ASSERT_EQ(host.events.size(), 1u);
  EXPECT_EQ(host.events[0].topic, 777u);
  EXPECT_EQ(host.events[0].args, (std::vector<Word>{11, 22}));

  RecordingHost host2;
  run("PUSH 1\nPUSH 2\nPUSH 3\nEMIT 2\nREVERT", {}, nullptr, &host2);
  EXPECT_TRUE(host2.events.empty());  // reverted events discarded
}

TEST(Vm, HashNIsOrderSensitiveAndDeterministic) {
  const auto ab = run("PUSH 1\nPUSH 2\nHASHN 2\nRETURN 1");
  const auto ba = run("PUSH 2\nPUSH 1\nHASHN 2\nRETURN 1");
  const auto ab2 = run("PUSH 1\nPUSH 2\nHASHN 2\nRETURN 1");
  ASSERT_TRUE(ab.ok() && ba.ok() && ab2.ok());
  EXPECT_NE(ab.returned[0], ba.returned[0]);
  EXPECT_EQ(ab.returned[0], ab2.returned[0]);
}

TEST(Vm, OracleBridgesToHost) {
  struct EchoHost : NullHost {
    std::optional<Word> oracle(Word request) override { return request * 2; }
  };
  EchoHost host;
  const auto r = run("PUSH 21\nORACLE\nRETURN 1", {}, nullptr, &host);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.returned[0], 42u);

  // A failing oracle traps the call.
  const auto failed = run("PUSH 1\nORACLE\nSTOP");
  EXPECT_EQ(failed.halt, Halt::OracleFailure);
}

TEST(Vm, ContextValuesExposed) {
  const Bytes code =
      assemble("CALLER\nCALLVALUE\nHEIGHT\nTIMESTAMP\nRETURN 4");
  Storage storage;
  ExecContext ctx;
  ctx.caller = 77;
  ctx.call_value = 88;
  ctx.height = 99;
  ctx.time_ms = 111;
  NullHost host;
  const auto r = execute(BytesView(code), storage, ctx, host);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.returned, (std::vector<Word>{77, 88, 99, 111}));
}

TEST(Vm, StepLimitCatchesTightLoops) {
  const Bytes code = assemble("loop:\nJUMP @loop");
  Storage storage;
  ExecContext ctx;
  ctx.gas_limit = ~0ULL;
  ctx.step_limit = 1'000;
  NullHost host;
  EXPECT_EQ(execute(BytesView(code), storage, ctx, host).halt,
            Halt::StepLimit);
}

TEST(Vm, FallingOffEndActsAsStop) {
  const auto r = run("PUSH 1\nPOP");
  EXPECT_EQ(r.halt, Halt::Stop);
}

TEST(Vm, WellFormednessCheck) {
  EXPECT_TRUE(code_well_formed(BytesView(assemble("PUSH 1\nSTOP"))));
  const Bytes bad = {0xee};
  EXPECT_FALSE(code_well_formed(BytesView(bad)));
  Bytes truncated = assemble("PUSH 1");
  truncated.pop_back();  // cut into the immediate
  EXPECT_FALSE(code_well_formed(BytesView(truncated)));
}

TEST(Assembler, LabelsAndSugar) {
  const Bytes a = assemble("PUSH @end\nJUMP\nend:\nSTOP");
  const Bytes b = assemble("JUMP @end\nend:\nSTOP");
  EXPECT_EQ(a, b);
}

TEST(Assembler, HexImmediates) {
  const auto r = run("PUSH 0xff\nRETURN 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.returned[0], 255u);
}

TEST(Assembler, Errors) {
  EXPECT_THROW(assemble("FLY 1"), AssembleError);
  EXPECT_THROW(assemble("PUSH"), AssembleError);
  EXPECT_THROW(assemble("POP 3"), AssembleError);
  EXPECT_THROW(assemble("JUMP @nowhere"), AssembleError);
  EXPECT_THROW(assemble("a:\na:\nSTOP"), AssembleError);
  EXPECT_THROW(assemble("DUP 300"), AssembleError);  // exceeds one byte
  EXPECT_THROW(assemble("PUSH banana"), AssembleError);
}

TEST(Assembler, DisassembleRoundTripMnemonics) {
  const std::string text = disassemble(BytesView(assemble(
      "PUSH 5\nDUP 1\nADD\nRETURN 1")));
  EXPECT_NE(text.find("PUSH 5"), std::string::npos);
  EXPECT_NE(text.find("RETURN 1"), std::string::npos);
}

TEST(ContractStore, DeployCallAndDigestDeterminism) {
  auto build = [] {
    ContractStore store;
    const Word id = store.deploy(
        assemble("PUSH 1\nCALLDATALOAD\nPUSH 2\nMUL\nRETURN 1"), 42, 1);
    ExecContext ctx;
    ctx.calldata = {0, 21};
    const auto r = store.call(id, ctx);
    return std::pair{store.digest(), r->returned.at(0)};
  };
  const auto [digest_a, value_a] = build();
  const auto [digest_b, value_b] = build();
  EXPECT_EQ(value_a, 42u);
  EXPECT_EQ(digest_a, digest_b);  // duplicated execution, identical state
}

TEST(ContractStore, CallUnknownContractReturnsNullopt) {
  ContractStore store;
  EXPECT_FALSE(store.call(12345, ExecContext{}).has_value());
}

TEST(ContractStore, SnapshotRollback) {
  ContractStore store;
  const Word id =
      store.deploy(assemble("PUSH 1\nCALLDATALOAD\nPUSH 9\nSSTORE\n"
                            "PUSH 1\nPUSH 500\nEMIT 0\nSTOP"),
                   1, 1);
  store.snapshot(1);

  ExecContext ctx;
  ctx.calldata = {0, 777};
  ASSERT_TRUE(store.call(id, ctx)->ok());
  EXPECT_EQ(store.contract(id)->storage.at(9), 777u);
  EXPECT_EQ(store.events().size(), 1u);

  store.rollback_to(1);
  EXPECT_EQ(store.contract(id)->storage.count(9), 0u);
  EXPECT_TRUE(store.events().empty());

  store.rollback_to(0);  // no snapshot that old -> fresh store
  EXPECT_EQ(store.size(), 0u);
}

TEST(Vm, SxloadTrapsWithoutStoreBackedHost) {
  // Raw execution has no contract store: cross-contract reads trap.
  const auto r = run("PUSH 1\nPUSH 2\nSXLOAD\nSTOP");
  EXPECT_EQ(r.halt, Halt::OracleFailure);
}

TEST(ContractStore, SxloadReadsAnotherContractsCommittedState) {
  ContractStore store;
  // Writer contract: stores calldata[1] at key 5.
  const Word writer = store.deploy(
      assemble("PUSH 1\nCALLDATALOAD\nPUSH 5\nSSTORE\nSTOP"), 1, 1);
  // Reader contract: returns SXLOAD(calldata[1], key 5).
  const Word reader = store.deploy(
      assemble("PUSH 5\nPUSH 1\nCALLDATALOAD\nSXLOAD\nRETURN 1"), 1, 1);

  ExecContext write_ctx;
  write_ctx.calldata = {0, 777};
  ASSERT_TRUE(store.call(writer, write_ctx)->ok());

  ExecContext read_ctx;
  read_ctx.calldata = {0, writer};
  const auto read = store.call(reader, read_ctx);
  ASSERT_TRUE(read->ok());
  EXPECT_EQ(read->returned.at(0), 777u);

  // Unknown contracts and absent keys read as zero (deterministic).
  ExecContext missing_ctx;
  missing_ctx.calldata = {0, 0xdead};
  EXPECT_EQ(store.call(reader, missing_ctx)->returned.at(0), 0u);
}

TEST(ContractStore, SxloadSeesCommittedNotInFlightState) {
  ContractStore store;
  // Self-reader: writes 9 to key 1, then SXLOADs its own id (calldata[1])
  // at key 1 — the read must see the *committed* (pre-call) value.
  const Word self_reader = store.deploy(assemble(R"(
PUSH 9
PUSH 1
SSTORE
PUSH 1
PUSH 1
CALLDATALOAD
SXLOAD
RETURN 1
)"),
                                        1, 1);
  ExecContext ctx;
  ctx.calldata = {0, self_reader};
  const auto r = store.call(self_reader, ctx);
  ASSERT_TRUE(r->ok());
  EXPECT_EQ(r->returned.at(0), 0u);  // in-flight write not yet visible
  // After commit, a second call sees 9.
  const auto again = store.call(self_reader, ctx);
  EXPECT_EQ(again->returned.at(0), 9u);
}

TEST(ContractStore, EventsSinceCursor) {
  ContractStore store;
  const Word id = store.deploy(
      assemble("PUSH 1\nPUSH 300\nEMIT 0\nPUSH 1\nPUSH 301\nEMIT 0\nSTOP"),
      1, 1);
  store.call(id, ExecContext{});
  EXPECT_EQ(store.events_since(0).size(), 2u);
  EXPECT_EQ(store.events_since(1).size(), 1u);
  EXPECT_EQ(store.events_since(5).size(), 0u);
}

}  // namespace
}  // namespace mc::vm
