// Wallet and failure-injection tests (gossip loss, umbrella header).
#include <gtest/gtest.h>

#include "chain/chainsim.hpp"
#include "chain/node.hpp"
#include "chain/wallet.hpp"
#include "medchain.hpp"  // umbrella header must compile standalone
#include "vm/assembler.hpp"

namespace mc::chain {
namespace {

TEST(Wallet, NonceTrackingAcrossKinds) {
  Wallet wallet = Wallet::from_seed("alice");
  EXPECT_EQ(wallet.next_nonce(), 0u);

  const Transaction t0 =
      wallet.transfer(crypto::address_of(crypto::key_from_seed("bob").pub), 5);
  const Transaction t1 = wallet.deploy(vm::assemble("STOP"));
  const Transaction t2 = wallet.call(0x123, {1, 2});
  const Transaction t3 = wallet.anchor(crypto::sha256("dataset"));
  EXPECT_EQ(t0.nonce, 0u);
  EXPECT_EQ(t1.nonce, 1u);
  EXPECT_EQ(t2.nonce, 2u);
  EXPECT_EQ(t3.nonce, 3u);
  for (const auto& tx : {t0, t1, t2, t3})
    EXPECT_TRUE(tx.verify_signature());
  EXPECT_EQ(t0.from, wallet.address());
}

TEST(Wallet, SyncFromState) {
  Wallet wallet = Wallet::from_seed("alice");
  WorldState state;
  state.credit(wallet.address(), 1'000'000);
  ChainParams params;
  // Burn through three nonces on-chain.
  for (int i = 0; i < 3; ++i) {
    const Transaction tx = wallet.transfer(
        crypto::address_of(crypto::key_from_seed("bob").pub), 1);
    ASSERT_TRUE(state.apply(tx, {}, params).ok);
  }
  Wallet fresh = Wallet::from_seed("alice");
  EXPECT_EQ(fresh.next_nonce(), 0u);
  fresh.sync(state);
  EXPECT_EQ(fresh.next_nonce(), 3u);
}

TEST(Wallet, EndToEndWithNode) {
  Wallet wallet = Wallet::from_seed("alice");
  ChainParams params;
  params.consensus = ConsensusKind::Pbft;
  params.premine = {{wallet.address(), 1'000'000'000}};
  Node node(crypto::key_from_seed("n0"), params,
            make_genesis("wallet-chain", ~0ULL));

  for (int i = 0; i < 5; ++i)
    ASSERT_TRUE(node.submit(wallet.transfer(
        crypto::address_of(crypto::key_from_seed("bob").pub), 100)));
  const Block block = node.propose(1'000);
  EXPECT_EQ(block.txs.size(), 5u);
  EXPECT_EQ(node.receive(block), BlockVerdict::Accepted);
}

TEST(GossipLoss, FloodingToleratesModerateDrops) {
  ChainSimConfig config;
  config.node_count = 6;
  config.client_count = 6;
  config.tx_count = 80;
  config.tx_rate_per_s = 100.0;
  config.params.consensus = ConsensusKind::ProofOfStake;
  config.params.block_interval_s = 0.5;
  config.seed = 88;

  const ChainSimReport clean = run_chain_sim(config);
  config.gossip_drop_rate = 0.10;
  const ChainSimReport lossy = run_chain_sim(config);

  // Flooding has ~n redundant paths: 10% per-message loss should barely
  // dent commitment (each node forwards to all peers).
  EXPECT_GE(lossy.committed_txs, clean.committed_txs * 9 / 10);
  EXPECT_GT(lossy.committed_txs, 0u);
}

TEST(GossipLoss, DropCounterAccounts) {
  ChainSimConfig config;
  config.node_count = 5;
  config.tx_count = 40;
  config.params.consensus = ConsensusKind::ProofOfStake;
  config.params.block_interval_s = 0.5;
  config.gossip_drop_rate = 0.25;
  config.seed = 13;
  const ChainSimReport report = run_chain_sim(config);
  // A quarter of messages dropped still leaves a live network.
  EXPECT_GT(report.committed_txs, 20u);
}

}  // namespace
}  // namespace mc::chain
