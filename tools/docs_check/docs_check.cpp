// docs-check: verifies that repo paths referenced from the markdown docs
// actually exist, so DESIGN.md / README.md can't silently rot as files
// move (see DESIGN.md "Documentation gates").
//
// What counts as a reference: any backtick-quoted token that contains a
// path separator and is rooted at a checked top-level entry (src/,
// tests/, bench/, fuzz/, tools/, examples/, .github/), plus bare
// top-level files like `ROADMAP.md` or `CMakeLists.txt`. Brace groups
// expand (`src/crypto/schnorr.{hpp,cpp}` checks both members); tokens
// with glob characters, placeholders (`<...>`), or generated prefixes
// (`build*/`) are skipped — they name patterns, not files.
//
// Usage:
//   docs_check <repo-root> <markdown-file>...
//
// Exit codes: 0 clean, 1 dangling references, 2 usage/IO error.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

/// Top-level entries whose descendants must exist when referenced.
const char* const kCheckedRoots[] = {"src/",   "tests/",    "bench/",
                                     "fuzz/",  "tools/",    "examples/",
                                     ".github/"};

bool is_path_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '/' ||
         c == '-' || c == '{' || c == '}' || c == ',' || c == '*';
}

/// Expand one `{a,b}` brace group (the docs never nest them).
std::vector<std::string> expand_braces(const std::string& token) {
  const auto open = token.find('{');
  if (open == std::string::npos) return {token};
  const auto close = token.find('}', open);
  if (close == std::string::npos) return {token};
  std::vector<std::string> out;
  std::stringstream alts(token.substr(open + 1, close - open - 1));
  std::string alt;
  while (std::getline(alts, alt, ','))
    out.push_back(token.substr(0, open) + alt + token.substr(close + 1));
  return out;
}

bool checked_reference(const std::string& token) {
  if (token.find('*') != std::string::npos) return false;  // glob pattern
  if (token.find('/') != std::string::npos) {
    for (const char* root : kCheckedRoots)
      if (token.rfind(root, 0) == 0) return true;
    return false;
  }
  // Bare top-level docs / build files: `README.md`, `CMakeLists.txt`, ...
  return token.size() > 3 &&
         (token.ends_with(".md") || token == "CMakeLists.txt" ||
          token == "CMakePresets.json");
}

struct Dangling {
  std::string file;
  std::size_t line = 0;
  std::string token;
};

void scan_line(const std::string& line, const std::string& file,
               std::size_t lineno, const fs::path& root,
               std::vector<Dangling>& out) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    if (line[i] != '`') continue;
    const std::size_t end = line.find('`', i + 1);
    if (end == std::string::npos) break;
    std::string token = line.substr(i + 1, end - i - 1);
    i = end;
    // Strip `:123` line anchors and trailing punctuation.
    if (const auto colon = token.find(':'); colon != std::string::npos)
      token.resize(colon);
    while (!token.empty() && (token.back() == '.' || token.back() == ','))
      token.pop_back();
    bool ok = true;
    for (char c : token) ok &= is_path_char(c);
    if (!ok || token.empty() || !checked_reference(token)) continue;
    for (const std::string& candidate : expand_braces(token)) {
      std::string rel = candidate;
      if (!rel.empty() && rel.back() == '/') rel.pop_back();
      if (!fs::exists(root / rel)) out.push_back({file, lineno, candidate});
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <repo-root> <markdown-file>...\n",
                 argv[0]);
    return 2;
  }
  const fs::path root = argv[1];
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "docs_check: not a directory: %s\n", argv[1]);
    return 2;
  }

  std::vector<Dangling> dangling;
  std::size_t files = 0;
  for (int i = 2; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::fprintf(stderr, "docs_check: cannot read %s\n", argv[i]);
      return 2;
    }
    ++files;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      scan_line(line, argv[i], lineno, root, dangling);
    }
  }

  if (!dangling.empty()) {
    // De-duplicate repeats of the same token within a file.
    std::set<std::string> reported;
    for (const Dangling& d : dangling) {
      const std::string key = d.file + "#" + d.token;
      if (!reported.insert(key).second) continue;
      std::fprintf(stderr, "%s:%zu: dangling path reference `%s`\n",
                   d.file.c_str(), d.line, d.token.c_str());
    }
    std::fprintf(stderr,
                 "docs_check: %zu dangling reference(s) across %zu file(s)\n",
                 reported.size(), files);
    return 1;
  }
  std::printf("docs_check: %zu file(s) clean\n", files);
  return 0;
}
