// medchain_analyze: static-analysis report / admission gate for contract
// bytecode (DESIGN.md §12).
//
// Inputs: built-in contract suite (--builtins), assembler source files
// (--asm file.mca ...), or raw bytecode files (--bin file ...). For each
// contract it prints the whole-program CFG/stack/gas/footprint report and
// a per-entry-point gas table (selectors recovered from the canonical
// dispatch pattern). With --check it exits non-zero unless every input is
// admitted under the strict deployment policy — the CI contract gate.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "contracts/analytics.hpp"
#include "contracts/policy.hpp"
#include "contracts/registry.hpp"
#include "contracts/trial.hpp"
#include "vm/analysis/analysis.hpp"
#include "vm/assembler.hpp"

namespace {

using namespace mc;
using namespace mc::vm;

struct Input {
  std::string name;
  Bytes code;
};

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// One line per storage site. Exact keys print as numbers; Param keys
/// with a symbolic expression print it (e.g. `key=H(7, calldata[3])`)
/// so readers can see what the concretizer will evaluate; everything
/// else prints its key class.
void print_footprint_entries(const analysis::StorageFootprint& fp,
                             const char* indent) {
  for (const analysis::FootprintEntry& e : fp.entries) {
    const analysis::KeyClass kc = analysis::key_class_of(e.key);
    std::string key;
    if (kc == analysis::KeyClass::Exact)
      key = std::to_string(e.key.value);
    else if (e.key.cls == analysis::ValueClass::Param && e.key.sym)
      key = analysis::key_to_string(e.key);
    else
      key = "<" + std::string(analysis::key_class_name(kc)) + ">";
    std::printf("%spc %-5zu %-5s key=%s\n", indent, e.pc,
                std::string(analysis::footprint_kind_name(e.kind)).c_str(),
                key.c_str());
  }
}

void print_report(const Input& input,
                  const analysis::AnalysisReport& report) {
  std::printf("== %s ==\n", input.name.c_str());
  std::printf("  code           %zu bytes, %zu instructions%s\n",
              report.code_bytes, report.instruction_count,
              report.well_formed ? "" : "  [MALFORMED]");
  std::printf("  cfg            %zu blocks, %zu unreachable instruction(s)%s\n",
              report.cfg.blocks.size(), report.unreachable_instructions,
              report.cfg.has_cycle ? ", cyclic" : "");
  for (const std::size_t pc : report.invalid_jump_pcs)
    std::printf("  invalid jump   pc %zu\n", pc);
  for (const std::size_t pc : report.unresolved_jump_pcs)
    std::printf("  unresolved jump pc %zu\n", pc);

  if (report.stack.top)
    std::printf("  stack          no bound (analysis incomplete)\n");
  else
    std::printf("  stack          max depth %zu%s%s\n", report.stack.max_depth,
                report.stack.underflow_possible ? ", underflow possible" : "",
                report.stack.overflow_possible ? ", overflow possible" : "");

  if (report.gas.top) {
    std::printf("  gas            unbounded");
    if (!report.gas.loop_head_pcs.empty()) {
      std::printf(" (loop heads:");
      for (const std::size_t pc : report.gas.loop_head_pcs)
        std::printf(" %zu", pc);
      std::printf(")");
    }
    std::printf("\n");
  } else {
    std::printf("  gas            <= %llu\n",
                static_cast<unsigned long long>(report.gas.max));
  }

  std::printf("  footprint      %zu site(s)\n", report.footprint.entries.size());
  print_footprint_entries(report.footprint, "    ");

  const std::vector<Word> selectors = analysis::discover_selectors(
      BytesView(input.code));
  for (const Word sel : selectors) {
    analysis::AnalyzeOptions opts;
    opts.selector = sel;
    const analysis::AnalysisReport per = analysis::analyze(
        BytesView(input.code), opts);
    if (per.gas.top)
      std::printf("  entry %-12llu gas unbounded\n",
                  static_cast<unsigned long long>(sel));
    else
      std::printf("  entry %-12llu gas <= %-8llu stack <= %zu\n",
                  static_cast<unsigned long long>(sel),
                  static_cast<unsigned long long>(per.gas.max),
                  per.stack.max_depth);
    // Per-selector footprint: the summary the deploy path caches and the
    // scheduler concretizes against live calldata (DESIGN.md §13).
    std::printf("    selector footprint  %zu site(s)%s\n",
                per.footprint.entries.size(),
                per.incomplete ? "  [incomplete]" : "");
    print_footprint_entries(per.footprint, "      ");
  }
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--check] [--selector N] "
               "[--builtins] [--asm file.mca ...] [--bin file ...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Input> inputs;
  bool check = false;
  std::optional<Word> selector;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check = true;
    } else if (arg == "--selector") {
      if (++i >= argc) return usage(argv[0]);
      selector = static_cast<Word>(std::strtoull(argv[i], nullptr, 0));
    } else if (arg == "--builtins") {
      inputs.push_back({"builtin:registry",
                        contracts::RegistryContract::bytecode()});
      inputs.push_back({"builtin:policy",
                        contracts::PolicyContract::bytecode()});
      inputs.push_back({"builtin:analytics",
                        contracts::AnalyticsContract::bytecode()});
      inputs.push_back({"builtin:trial", contracts::TrialContract::bytecode()});
    } else if (arg == "--asm" || arg == "--bin") {
      if (++i >= argc) return usage(argv[0]);
      const std::string path = argv[i];
      std::string data;
      if (!read_file(path, data)) {
        std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
        return 2;
      }
      if (arg == "--asm") {
        try {
          inputs.push_back({path, vm::assemble(data)});
        } catch (const std::exception& e) {
          std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
          return 2;
        }
      } else {
        inputs.push_back({path, Bytes(data.begin(), data.end())});
      }
    } else {
      return usage(argv[0]);
    }
  }
  if (inputs.empty()) return usage(argv[0]);

  int rejected = 0;
  for (const Input& input : inputs) {
    analysis::AnalyzeOptions opts;
    opts.selector = selector;
    const analysis::AnalysisReport report =
        analysis::analyze(BytesView(input.code), opts);
    print_report(input, report);
    const analysis::AdmissionVerdict verdict =
        analysis::admit(report, analysis::AdmissionPolicy::strict());
    if (verdict.admitted) {
      std::printf("  admission      OK (strict policy)\n\n");
    } else {
      std::printf("  admission      REJECTED: %s\n\n", verdict.reason.c_str());
      ++rejected;
    }
  }

  if (check && rejected > 0) {
    std::fprintf(stderr, "medchain_analyze: %d contract(s) rejected\n",
                 rejected);
    return 1;
  }
  return 0;
}
