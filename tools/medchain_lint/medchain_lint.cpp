// medchain-lint: project-invariant checker for rules clang-tidy cannot
// express (see DESIGN.md "Adversarial inputs & determinism lint").
//
// Rules:
//   determinism-random       std::random_device / rand() / srand() are
//                            banned outside common/rng.hpp — every
//                            stochastic component takes a seeded mc::Rng
//                            so runs replay from a single seed.
//   determinism-time         system_clock / time() / gettimeofday / ...
//                            are banned outside sim/clock.hpp — protocol
//                            code reads simulated time, never the wall.
//   concurrency-primitives   naked std::mutex / std::thread / condition
//                            variables are banned outside common/ and
//                            sim/ — concurrency goes through ThreadPool
//                            and EventQueue so TSan coverage and replay
//                            stay centralized.
//   raw-assert               assert() is banned everywhere — invariants
//                            use MC_ASSERT / MC_DCHECK, which stay alive
//                            in audit builds and compile to nothing in
//                            Release without evaluating the condition.
//   nodiscard-decode         public decode*/verify* declarations in
//                            headers must be [[nodiscard]] — a dropped
//                            verdict on an untrusted-input path is a
//                            vulnerability, not a style issue.
//   vm-direct-execute        raw vm::execute calls are banned outside
//                            vm/ — contract code runs through
//                            ContractStore::deploy/call so the static
//                            analyzer's admission gate (and, in audit
//                            builds, its soundness check) cannot be
//                            bypassed.
//   state-direct-apply       raw WorldState/StateOverlay .apply() calls
//                            are banned outside chain/state and
//                            chain/execution/ — block transactions go
//                            through BlockExecutor so sequential and
//                            wave-parallel replicas stay bit-identical.
//   footprint-bypass         direct <store>.deploy() calls are banned
//                            outside vm/ and tests — contracts reach the
//                            chain through Deploy transactions so the
//                            admission gate runs and the per-selector
//                            footprint summaries the parallel scheduler
//                            concretizes are computed exactly once, at
//                            the choke point.
//
// Escape hatch: `// medchain-lint: allow(<rule>[, <rule>...])` on the
// offending line or the line directly above it; `allow-file(<rule>)`
// anywhere in a file suppresses the rule file-wide. Every allow is
// expected to carry a justification comment next to it.
//
// Usage:
//   medchain_lint <dir-or-file>...                 walk and lint
//   medchain_lint --compile-commands <json> [...]  lint the "file" list
//   medchain_lint --self-test <dir>...             verify against
//                                                  `expect(<rule>)` markers
//   medchain_lint --list-rules
//
// Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

struct Rule {
  std::string_view name;
  std::string_view why;
};

constexpr Rule kRules[] = {
    {"determinism-random",
     "seeded mc::Rng only (common/rng.hpp) - replay needs one seed"},
    {"determinism-time",
     "simulated sim::Clock time only (sim/clock.hpp) - no wall clock"},
    {"concurrency-primitives",
     "ThreadPool/EventQueue only - raw mutex/thread outside common/, sim/"},
    {"raw-assert", "use MC_ASSERT / MC_DCHECK instead of assert()"},
    {"nodiscard-decode",
     "public decode*/verify* header declarations must be [[nodiscard]]"},
    {"vm-direct-execute",
     "ContractStore::deploy/call only - raw vm::execute skips the "
     "admission gate (vm/analysis) outside vm/"},
    {"state-direct-apply",
     "BlockExecutor (chain/execution) only - raw <state>.apply() outside "
     "chain/state skips the scheduled execution pipeline"},
    {"footprint-bypass",
     "Deploy transactions only - raw <store>.deploy() outside vm/ and "
     "tests skips the admission gate and its footprint summaries"},
};

bool is_known_rule(std::string_view name) {
  for (const Rule& r : kRules)
    if (r.name == name) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

bool is_word(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Path tail relative to the last "src/" component (rules are written
/// against src-relative paths); the generic full path when absent.
std::string src_relative(const fs::path& path) {
  const std::string p = path.generic_string();
  const auto at = p.rfind("src/");
  return at == std::string::npos ? p : p.substr(at + 4);
}

bool in_dir(const std::string& rel, std::string_view dir) {
  return rel.rfind(dir, 0) == 0;  // rel starts with "common/" etc.
}

/// Occurrences of `token` in `line` that start and end on word
/// boundaries (the trailing '(' of tokens like "rand(" anchors the end).
bool has_token(std::string_view line, std::string_view token) {
  std::size_t at = 0;
  while ((at = line.find(token, at)) != std::string_view::npos) {
    const bool left_ok = at == 0 || !is_word(line[at - 1]);
    const std::size_t end = at + token.size();
    const bool right_ok = end >= line.size() || !is_word(line[end]) ||
                          token.back() == '(';
    if (left_ok && right_ok) return true;
    ++at;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Comment / string stripping (so tokens in comments and literals never
// fire). Handles //, /*...*/ across lines, "..." and '...' literals, and
// raw strings R"delim(...)delim".
// ---------------------------------------------------------------------------

class Stripper {
 public:
  /// Returns `line` with comment and literal bytes blanked to spaces.
  std::string strip(const std::string& line) {
    std::string out(line.size(), ' ');
    std::size_t i = 0;
    while (i < line.size()) {
      if (mode_ == Mode::BlockComment) {
        const auto end = line.find("*/", i);
        if (end == std::string::npos) return out;
        i = end + 2;
        mode_ = Mode::Code;
        continue;
      }
      if (mode_ == Mode::RawString) {
        const std::string close = ")" + raw_delim_ + "\"";
        const auto end = line.find(close, i);
        if (end == std::string::npos) return out;
        i = end + close.size();
        mode_ = Mode::Code;
        continue;
      }
      const char c = line[i];
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') return out;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        mode_ = Mode::BlockComment;
        i += 2;
        continue;
      }
      if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"' &&
          (i == 0 || !is_word(line[i - 1]))) {
        const auto open = line.find('(', i + 2);
        if (open != std::string::npos) {
          raw_delim_ = line.substr(i + 2, open - (i + 2));
          mode_ = Mode::RawString;
          i = open + 1;
          continue;
        }
      }
      if (c == '"' || c == '\'') {
        const char quote = c;
        ++i;
        while (i < line.size()) {
          if (line[i] == '\\') {
            i += 2;
            continue;
          }
          if (line[i] == quote) break;
          ++i;
        }
        ++i;  // past closing quote (or end of line: unterminated)
        continue;
      }
      out[i] = c;
      ++i;
    }
    return out;
  }

 private:
  enum class Mode { Code, BlockComment, RawString };
  Mode mode_ = Mode::Code;
  std::string raw_delim_;
};

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

/// Parses `marker(<rule>[, <rule>...])` occurrences in a raw line.
std::vector<std::string> parse_marker(const std::string& line,
                                      std::string_view marker) {
  std::vector<std::string> rules;
  std::size_t at = line.find(marker);
  if (at == std::string::npos) return rules;
  at = line.find('(', at);
  const auto close = line.find(')', at);
  if (at == std::string::npos || close == std::string::npos) return rules;
  std::string inner = line.substr(at + 1, close - at - 1);
  std::size_t start = 0;
  while (start <= inner.size()) {
    auto comma = inner.find(',', start);
    if (comma == std::string::npos) comma = inner.size();
    std::string rule = inner.substr(start, comma - start);
    rule.erase(std::remove_if(rule.begin(), rule.end(),
                              [](char c) { return std::isspace(
                                    static_cast<unsigned char>(c)) != 0; }),
               rule.end());
    if (!rule.empty()) rules.push_back(rule);
    start = comma + 1;
  }
  return rules;
}

// ---------------------------------------------------------------------------
// Per-rule line checks (on stripped lines)
// ---------------------------------------------------------------------------

const char* check_determinism_random(std::string_view line) {
  for (const char* tok : {"std::random_device", "rand(", "srand(",
                          "random_shuffle"})
    if (has_token(line, tok)) return tok;
  return nullptr;
}

const char* check_determinism_time(std::string_view line) {
  for (const char* tok : {"system_clock", "time(", "gettimeofday",
                          "clock_gettime", "localtime", "gmtime("})
    if (has_token(line, tok)) return tok;
  return nullptr;
}

const char* check_concurrency(std::string_view line) {
  for (const char* tok : {"std::mutex", "std::shared_mutex",
                          "std::recursive_mutex", "std::timed_mutex",
                          "std::condition_variable", "std::thread",
                          "std::jthread"})
    if (has_token(line, tok)) return tok;
  return nullptr;
}

const char* check_raw_assert(std::string_view line) {
  return has_token(line, "assert(") ? "assert(" : nullptr;
}

const char* check_vm_direct_execute(std::string_view line) {
  return has_token(line, "vm::execute(") ? "vm::execute(" : nullptr;
}

bool ends_with_ci(std::string_view s, std::string_view suffix) {
  if (s.size() < suffix.size()) return false;
  for (std::size_t i = 0; i < suffix.size(); ++i) {
    const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(
        s[s.size() - suffix.size() + i])));
    if (c != suffix[i]) return false;
  }
  return true;
}

/// Matches `<recv>.member(` / `<recv>->member(` where the receiver
/// identifier, trailing underscores stripped, case-insensitively ends
/// with one of `suffixes`. Shared receiver-matching core of the
/// state-direct-apply and footprint-bypass rules.
const char* receiver_member_call(
    std::string_view line, std::initializer_list<const char*> members,
    std::initializer_list<const char*> suffixes) {
  for (const char* member : members) {
    std::size_t at = 0;
    while ((at = line.find(member, at)) != std::string_view::npos) {
      std::size_t back = at;
      while (back > 0 && is_word(line[back - 1])) --back;
      std::string_view recv = line.substr(back, at - back);
      while (!recv.empty() && recv.back() == '_') recv.remove_suffix(1);
      for (const char* suffix : suffixes)
        if (ends_with_ci(recv, suffix)) return member;
      at += std::strlen(member);
    }
  }
  return nullptr;
}

/// Matches `<recv>.apply(` / `<recv>->apply(` where the receiver
/// identifier names a ledger state or execution overlay. Catches
/// `state.apply`, `src_state.apply`, `preview_state_->apply` without
/// firing on unrelated apply() methods (learners, standardizers).
const char* check_state_direct_apply(std::string_view line) {
  return receiver_member_call(line, {".apply(", "->apply("},
                              {"state", "overlay"});
}

/// Matches `<recv>.deploy(` / `<recv>->deploy(` where the receiver
/// names a contract store. Catches `store.deploy`, `store_->deploy`,
/// `contract_store.deploy` without firing on unrelated deploy()
/// helpers (fleet deployers, infra scripts).
const char* check_footprint_bypass(std::string_view line) {
  return receiver_member_call(line, {".deploy(", "->deploy("}, {"store"});
}

/// Heuristic declaration finder for decode*/verify* in headers. A match
/// is a declaration when the name is preceded by a type-ish token on the
/// same line (identifier/`>`/`&`/`*` that is not `return`), not reached
/// through `.` `->` `::` `(` `,` `=` `!` (those are calls), and neither
/// this line nor the one above carries [[nodiscard]].
const char* check_nodiscard(std::string_view line, std::string_view prev) {
  if (line.find("nodiscard") != std::string_view::npos ||
      prev.find("nodiscard") != std::string_view::npos)
    return nullptr;
  for (std::string_view name : {"decode", "verify"}) {
    std::size_t at = 0;
    while ((at = line.find(name, at)) != std::string_view::npos) {
      const std::size_t start = at;
      at += name.size();
      if (start > 0 && is_word(line[start - 1])) continue;  // mid-word
      // Extend over verify_signature-style suffixes.
      std::size_t end = start + name.size();
      while (end < line.size() && is_word(line[end])) ++end;
      if (end >= line.size() || line[end] != '(') continue;  // not a call/decl
      // Walk back to the previous non-space character.
      std::size_t back = start;
      while (back > 0 && line[back - 1] == ' ') --back;
      if (back == 0) continue;  // nothing before: continuation line, skip
      const char before = line[back - 1];
      if (before == '.' || before == ':' || before == '(' || before == ',' ||
          before == '=' || before == '!' || before == '>')
        continue;  // member call / qualified call / argument
      if (!is_word(before) && before != '&' && before != '*') continue;
      // Previous token must be a type, not a keyword that precedes calls.
      std::size_t tok_end = back;
      std::size_t tok_start = tok_end;
      while (tok_start > 0 && is_word(line[tok_start - 1])) --tok_start;
      const std::string_view tok = line.substr(tok_start, tok_end - tok_start);
      if (tok == "return" || tok == "if" || tok == "while" || tok == "case")
        continue;
      return name == "decode" ? "decode" : "verify*";
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// File scanning
// ---------------------------------------------------------------------------

struct Violation {
  std::string file;  // src-relative for readability
  std::size_t line = 0;
  std::string rule;
  std::string token;
};

struct Expectation {
  std::string file;
  std::size_t line = 0;
  std::string rule;

  auto operator<=>(const Expectation&) const = default;
};

struct ScanResult {
  std::vector<Violation> violations;
  std::vector<Expectation> expectations;  // only in --self-test mode
  std::size_t files_scanned = 0;
  bool bad_annotation = false;
};

bool rule_applies(std::string_view rule, const std::string& rel,
                  bool is_header) {
  if (rule == "determinism-random") return rel != "common/rng.hpp";
  if (rule == "determinism-time") return rel != "sim/clock.hpp";
  if (rule == "concurrency-primitives")
    return !in_dir(rel, "common/") && !in_dir(rel, "sim/");
  if (rule == "raw-assert") return true;
  if (rule == "nodiscard-decode") return is_header;
  // vm/ owns the interpreter: vm.cpp defines execute and contract_store
  // is the admission choke point that wraps it.
  if (rule == "vm-direct-execute") return !in_dir(rel, "vm/");
  // chain/state defines the apply methods; chain/execution is the one
  // sanctioned caller (the pipeline the rule funnels everyone through).
  if (rule == "state-direct-apply")
    return !in_dir(rel, "chain/execution/") && rel != "chain/state.hpp" &&
           rel != "chain/state.cpp";
  // vm/ owns ContractStore::deploy (the admission gate itself); tests
  // exercise the raw entry point deliberately.
  if (rule == "footprint-bypass")
    return !in_dir(rel, "vm/") && rel.find("tests/") == std::string::npos;
  return false;
}

void scan_file(const fs::path& path, bool self_test, ScanResult& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "medchain_lint: cannot read %s\n",
                 path.string().c_str());
    out.bad_annotation = true;
    return;
  }
  ++out.files_scanned;
  const std::string rel = src_relative(path);
  const std::string ext = path.extension().string();
  const bool is_header = ext == ".hpp" || ext == ".h";

  Stripper stripper;
  std::set<std::string> file_allows;
  std::vector<std::string> prev_allows;
  std::string prev_stripped;
  std::string raw;
  std::size_t line_no = 0;

  // File-wide allows can appear anywhere; gather them first.
  {
    std::ifstream pre(path);
    std::string l;
    while (std::getline(pre, l))
      for (const auto& rule : parse_marker(l, "medchain-lint: allow-file"))
        file_allows.insert(rule);
  }

  while (std::getline(in, raw)) {
    ++line_no;
    const std::vector<std::string> line_allows =
        parse_marker(raw, "medchain-lint: allow");
    for (const auto& rule : line_allows)
      if (!is_known_rule(rule)) {
        std::fprintf(stderr, "%s:%zu: unknown rule '%s' in allow()\n",
                     rel.c_str(), line_no, rule.c_str());
        out.bad_annotation = true;
      }
    if (self_test)
      for (const auto& rule : parse_marker(raw, "expect"))
        if (is_known_rule(rule))
          out.expectations.push_back({rel, line_no, rule});

    const std::string stripped = stripper.strip(raw);

    const auto allowed = [&](std::string_view rule) {
      const auto match = [&](const std::vector<std::string>& list) {
        return std::find(list.begin(), list.end(), rule) != list.end();
      };
      return file_allows.count(std::string(rule)) > 0 ||
             match(line_allows) || match(prev_allows);
    };
    const auto report = [&](std::string_view rule, const char* token) {
      if (token == nullptr) return;
      if (!rule_applies(rule, rel, is_header)) return;
      if (allowed(rule)) return;
      out.violations.push_back(
          {rel, line_no, std::string(rule), std::string(token)});
    };

    report("determinism-random", check_determinism_random(stripped));
    report("determinism-time", check_determinism_time(stripped));
    report("concurrency-primitives", check_concurrency(stripped));
    report("raw-assert", check_raw_assert(stripped));
    report("nodiscard-decode", check_nodiscard(stripped, prev_stripped));
    report("vm-direct-execute", check_vm_direct_execute(stripped));
    report("state-direct-apply", check_state_direct_apply(stripped));
    report("footprint-bypass", check_footprint_bypass(stripped));

    prev_allows = line_allows;
    prev_stripped = stripped;
  }
}

std::vector<fs::path> collect_files(const std::vector<std::string>& roots) {
  std::vector<fs::path> files;
  for (const auto& root : roots) {
    const fs::path p(root);
    if (fs::is_directory(p)) {
      for (const auto& entry : fs::recursive_directory_iterator(p)) {
        if (!entry.is_regular_file()) continue;
        const std::string ext = entry.path().extension().string();
        if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc")
          files.push_back(entry.path());
      }
    } else if (fs::exists(p)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "medchain_lint: no such path: %s\n", root.c_str());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// Extract "file" entries from a compile_commands.json (string scan — the
/// format is machine-generated and flat, so a parser is overkill).
std::vector<std::string> compile_commands_files(const std::string& json_path) {
  std::vector<std::string> files;
  std::ifstream in(json_path);
  std::string line;
  while (std::getline(in, line)) {
    const auto key = line.find("\"file\"");
    if (key == std::string::npos) continue;
    const auto open = line.find('"', line.find(':', key));
    const auto close = line.find('"', open + 1);
    if (open == std::string::npos || close == std::string::npos) continue;
    files.push_back(line.substr(open + 1, close - open - 1));
  }
  return files;
}

int run_self_test(ScanResult& result) {
  std::set<Expectation> expected(result.expectations.begin(),
                                 result.expectations.end());
  std::set<Expectation> actual;
  for (const auto& v : result.violations)
    actual.insert({v.file, v.line, v.rule});

  bool ok = true;
  for (const auto& e : expected)
    if (actual.count(e) == 0) {
      std::fprintf(stderr,
                   "self-test FAIL: expected %s at %s:%zu, not reported\n",
                   e.rule.c_str(), e.file.c_str(), e.line);
      ok = false;
    }
  for (const auto& a : actual)
    if (expected.count(a) == 0) {
      std::fprintf(stderr,
                   "self-test FAIL: unexpected %s at %s:%zu\n",
                   a.rule.c_str(), a.file.c_str(), a.line);
      ok = false;
    }
  // Every rule must be exercised at least once by the testdata, so a
  // rule that silently stops matching cannot pass the gate.
  for (const Rule& rule : kRules) {
    const bool seen = std::any_of(
        expected.begin(), expected.end(),
        [&](const Expectation& e) { return e.rule == rule.name; });
    if (!seen) {
      std::fprintf(stderr, "self-test FAIL: rule %.*s has no expect() case\n",
                   static_cast<int>(rule.name.size()), rule.name.data());
      ok = false;
    }
  }
  std::fprintf(stderr, "medchain_lint self-test: %zu expectation(s), %s\n",
               expected.size(), ok ? "all matched" : "MISMATCH");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool self_test = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      for (const Rule& r : kRules)
        std::printf("%-24.*s %.*s\n", static_cast<int>(r.name.size()),
                    r.name.data(), static_cast<int>(r.why.size()),
                    r.why.data());
      return 0;
    }
    if (arg == "--self-test") {
      self_test = true;
      continue;
    }
    if (arg == "--compile-commands") {
      if (++i >= argc) {
        std::fprintf(stderr, "medchain_lint: --compile-commands needs a path\n");
        return 2;
      }
      for (auto& f : compile_commands_files(argv[i])) roots.push_back(f);
      continue;
    }
    roots.push_back(std::string(arg));
  }
  if (roots.empty()) {
    std::fprintf(stderr,
                 "usage: medchain_lint [--self-test] [--compile-commands "
                 "<json>] <dir-or-file>...\n");
    return 2;
  }

  ScanResult result;
  for (const fs::path& file : collect_files(roots))
    scan_file(file, self_test, result);

  if (self_test) return run_self_test(result);

  for (const auto& v : result.violations)
    std::printf("%s:%zu: [%s] forbidden '%s' (see --list-rules; suppress "
                "with // medchain-lint: allow(%s))\n",
                v.file.c_str(), v.line, v.rule.c_str(), v.token.c_str(),
                v.rule.c_str());
  std::fprintf(stderr, "medchain_lint: %zu violation(s) across %zu file(s)\n",
               result.violations.size(), result.files_scanned);
  if (result.bad_annotation) return 2;
  return result.violations.empty() ? 0 : 1;
}
