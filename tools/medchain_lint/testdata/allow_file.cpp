// Self-test fixture: a file-wide allow suppresses every match of the
// rule, so none of the raw asserts below may be reported.
// Justification (fixture): exercises the allow-file escape hatch.
// medchain-lint: allow-file(raw-assert)

void lots_of_asserts(int x) {
  assert(x > 0);
  assert(x < 100);
}
