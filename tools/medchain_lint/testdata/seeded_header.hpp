// Self-test fixture for header-only rules (see seeded_violations.cpp).
#pragma once

struct WireThing {
  static WireThing decode(const char* data);  // expect(nodiscard-decode)
  bool verify_payload() const;                // expect(nodiscard-decode)

  [[nodiscard]] static WireThing decode_ok(const char* data);
  [[nodiscard]] bool verify_ok() const;

  // Call sites and returns must not fire:
  bool check() const { return verify_ok(); }
};
