// Self-test fixture: every lint rule must fire exactly on the lines
// marked `expect(<rule>)` and nowhere else. `medchain_lint --self-test`
// cross-checks the reported set against these markers, so a rule that
// silently stops matching (or starts over-matching) fails CI.
//
// This file is never compiled — it only needs to look like C++.

#include <cstdint>

void determinism_violations() {
  std::random_device rd;                  // expect(determinism-random)
  int r = rand();                         // expect(determinism-random)
  std::uint64_t t = time(nullptr);        // expect(determinism-time)
  auto now = std::chrono::system_clock::now();  // expect(determinism-time)
  (void)rd; (void)r; (void)t; (void)now;
}

void concurrency_violations() {
  std::mutex m;                           // expect(concurrency-primitives)
  std::thread worker([] {});              // expect(concurrency-primitives)
  worker.join();
}

void assert_violation(int x) {
  assert(x > 0);                          // expect(raw-assert)
}

void vm_bypass_violation() {
  auto r = vm::execute(code, storage, ctx, host);   // expect(vm-direct-execute)
  auto q = mc::vm::execute(code, storage, ctx, host);  // expect(vm-direct-execute)
  (void)r; (void)q;
  store.call(id, ctx, host);  // admission path: must not fire
}

void footprint_bypass_violations() {
  store.deploy(deploy_tx, 7);               // expect(footprint-bypass)
  contract_store_->deploy(tx, height);      // expect(footprint-bypass)
  auto id = node_store.deploy(std::move(tx), h);  // expect(footprint-bypass)
  deployer.deploy(fleet);       // unrelated deploy(): must not fire
  store.deployments();          // wrong member name: must not fire
  (void)id;
}

void state_bypass_violations() {
  state.apply(tx, proposer, params);        // expect(state-direct-apply)
  src_state.apply(tx, Address{}, params);   // expect(state-direct-apply)
  world_state_->apply(tx, proposer, params);  // expect(state-direct-apply)
  overlay.apply(tx, proposer, params);      // expect(state-direct-apply)
  standardizer.apply(core.x);   // unrelated apply(): must not fire
  estate.applying(tx);          // wrong member name: must not fire
}

void suppressed_lines() {
  // Justification: fixture proves the escape hatch suppresses a match.
  int r = rand();  // medchain-lint: allow(determinism-random)
  // medchain-lint: allow(concurrency-primitives) — annotation-above form
  std::mutex guarded;
  (void)r; (void)guarded;
}

void non_violations() {
  // Comments and strings must never fire: rand() time() std::mutex
  const char* text = "std::random_device in a string literal";
  static_assert(sizeof(text) > 0, "static_assert is not assert");
  (void)text;
}
